"""Hypothesis stateful machines for the sharding engine and unbounded map.

Two :class:`~hypothesis.stateful.RuleBasedStateMachine`\\ s drive the
production composites through randomized rule sequences —
singleton inserts/deletes, whole batches, bursts engineered to force
shard splits and merges, and *read* rules (select-kth, cursor range
streams, interval counts, key lookups) whose answers are checked against
the reference model — and run the full structural consistency check
(directory vs shard sizes, density policy, physical order, reference-model
contents) after **every** rule via an invariant, so query correctness is
exercised across split/merge boundaries specifically.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from hypothesis import settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.algorithms import ClassicalPMA
from repro.applications.ordered_map import PackedMemoryMap
from repro.core.layered import make_corollary11_labeler
from repro.core.physical_backends import vector_available
from repro.core.sharded import ShardedLabeler
from repro.core.validation import check_labeler

#: Small shards so a handful of rules crosses split/merge boundaries.
SHARD_CAPACITY = 16


def _midpoint(reference: list[Fraction], rank: int) -> Fraction:
    lower = reference[rank - 2] if rank >= 2 else None
    upper = reference[rank - 1] if rank - 1 < len(reference) else None
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        return upper - 1
    if upper is None:
        return lower + 1
    return (lower + upper) / 2


class ShardedMachine(RuleBasedStateMachine):
    """Insert/delete/batch/burst rules against a ``ShardedLabeler``."""

    def __init__(self) -> None:
        super().__init__()
        self.labeler = ShardedLabeler(
            lambda capacity: ClassicalPMA(capacity),
            shard_capacity=SHARD_CAPACITY,
        )
        self.reference: list[Fraction] = []

    # -- rules ---------------------------------------------------------
    @rule(data=st.data())
    def insert_one(self, data):
        rank = data.draw(
            st.integers(1, len(self.reference) + 1), label="insert rank"
        )
        key = _midpoint(self.reference, rank)
        self.labeler.insert(rank, key)
        self.reference.insert(rank - 1, key)

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_one(self, data):
        rank = data.draw(st.integers(1, len(self.reference)), label="delete rank")
        self.labeler.delete(rank)
        self.reference.pop(rank - 1)

    @rule(data=st.data())
    def insert_batch(self, data):
        size = len(self.reference)
        ranks = data.draw(
            st.lists(st.integers(1, size + 1), min_size=1, max_size=12),
            label="batch ranks (pre-batch)",
        )
        ranks.sort()
        items = []
        merged = list(self.reference)
        for offset, rank in enumerate(ranks):
            key = _midpoint(merged, rank + offset)
            items.append((rank, key))
            merged.insert(rank + offset - 1, key)
        self.labeler.insert_batch(items)
        self.reference = merged

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_batch(self, data):
        size = len(self.reference)
        ranks = data.draw(
            st.lists(
                st.integers(1, size), min_size=1, max_size=min(12, size), unique=True
            ),
            label="delete ranks (pre-batch)",
        )
        self.labeler.delete_batch(ranks)
        for rank in sorted(ranks, reverse=True):
            self.reference.pop(rank - 1)

    @rule(data=st.data())
    def split_burst(self, data):
        """Hammer one rank until at least one shard split fires."""
        rank = data.draw(
            st.integers(1, len(self.reference) + 1), label="burst rank"
        )
        splits_before = self.labeler.splits
        for _ in range(SHARD_CAPACITY):
            key = _midpoint(self.reference, rank)
            self.labeler.insert(rank, key)
            self.reference.insert(rank - 1, key)
            if self.labeler.splits > splits_before:
                break

    @precondition(lambda self: len(self.reference) > SHARD_CAPACITY)
    @rule()
    def merge_burst(self):
        """Drain from the front until a merge (or a single shard remains)."""
        merges_before = self.labeler.merges
        for _ in range(2 * SHARD_CAPACITY):
            if not self.reference or self.labeler.shard_count == 1:
                break
            self.labeler.delete(1)
            self.reference.pop(0)
            if self.labeler.merges > merges_before:
                break

    # -- read rules: query correctness across split/merge bursts --------
    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def select_kth(self, data):
        rank = data.draw(st.integers(1, len(self.reference)), label="select rank")
        assert self.labeler.select(rank) == self.reference[rank - 1]
        assert self.labeler.slot_of_rank(rank) == self.labeler.slot_of(
            self.reference[rank - 1]
        )

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def cursor_range(self, data):
        size = len(self.reference)
        rank = data.draw(st.integers(1, size), label="range start rank")
        span = data.draw(st.integers(1, 20), label="range span")
        hi = min(size, rank + span - 1)
        assert (
            self.labeler.cursor(rank).take(hi - rank + 1)
            == self.reference[rank - 1 : hi]
        )

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def count_interval(self, data):
        size = len(self.reference)
        lo = data.draw(st.integers(1, size), label="count lo")
        hi = data.draw(st.integers(lo, size), label="count hi")
        assert self.labeler.count_rank_range(lo, hi) == hi - lo + 1
        assert (
            self.labeler.count_range(0, self.labeler.num_slots) == size
        )

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def lookup_key(self, data):
        rank = data.draw(st.integers(1, len(self.reference)), label="lookup rank")
        key = self.reference[rank - 1]
        assert self.labeler.rank_of(key) == rank
        assert self.labeler.contains(key)

    # -- invariant: full consistency after every rule ------------------
    @invariant()
    def consistent(self):
        self.labeler.check_consistency()
        assert self.labeler.elements() == self.reference
        assert len(self.labeler) == len(self.reference)
        if self.reference:
            check_labeler(self.labeler, expected=self.reference)


class PackedMemoryMapMachine(RuleBasedStateMachine):
    """Mapping rules against the unbounded ``PackedMemoryMap(capacity=None)``."""

    keys = st.integers(0, 200)

    def __init__(self) -> None:
        super().__init__()
        self.map = PackedMemoryMap(capacity=None, shard_capacity=SHARD_CAPACITY)
        self.model: dict[int, int] = {}
        self._values = itertools.count()

    @rule(key=keys)
    def set_item(self, key):
        value = next(self._values)
        self.map[key] = value
        self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete_item(self, data):
        key = data.draw(
            st.sampled_from(sorted(self.model)), label="key to delete"
        )
        del self.map[key]
        del self.model[key]

    @rule(items=st.lists(st.tuples(keys, st.integers()), max_size=24))
    def bulk_update(self, items):
        inserted = self.map.update_many(items)
        fresh = {key for key, _ in items} - set(self.model)
        assert inserted == len(fresh)
        for key, value in items:
            self.model[key] = value

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def point_queries(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)), label="probe key")
        assert self.map[key] == self.model[key]
        assert key in self.map
        ordered = sorted(self.model)
        expected_rank = ordered.index(key)
        assert self.map.keys()[expected_rank] == key
        assert self.map.rank_of(key) == expected_rank + 1
        assert self.map.select(expected_rank + 1) == key

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def ordered_queries(self, data):
        ordered = sorted(self.model)
        probe = data.draw(st.integers(-5, 205), label="order probe")
        below = [key for key in ordered if key < probe]
        above = [key for key in ordered if key > probe]
        assert self.map.predecessor(probe) == (below[-1] if below else None)
        assert self.map.successor(probe) == (above[0] if above else None)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def range_pages(self, data):
        ordered = sorted(self.model)
        low = data.draw(st.integers(0, 200), label="range low")
        high = data.draw(st.integers(low, 200), label="range high")
        limit = data.draw(st.integers(1, 8), label="page size")
        expected = [
            (key, self.model[key]) for key in ordered if low <= key <= high
        ]
        assert list(self.map.range(low, high)) == expected
        assert self.map.count_range(low, high) == len(expected)
        paged: list = []
        after = None
        while True:
            page = list(self.map.range(low, high, limit=limit, after=after))
            if not page:
                break
            paged.extend(page)
            after = page[-1][0]
        assert paged == expected

    @invariant()
    def consistent(self):
        self.map.check()
        labeler = self.map.labeler
        labeler.check_consistency()
        assert self.map.keys() == sorted(self.model)
        assert len(self.map) == len(self.model)


class ParallelTwinMachine(RuleBasedStateMachine):
    """Serial and pooled labelers driven in lockstep must stay bit-identical.

    Every rule applies the same drawn batch to a serial ``ShardedLabeler``
    and to a twin executing per-shard sub-batches on an 8-worker
    :class:`~repro.core.parallel.ShardPool`, then compares the move
    triples of the results just produced; the invariant compares labels,
    per-shard physical layout, and the restructure log after every step.
    Batches are drawn wide (up to 24 ranks) so they regularly span
    several shards and actually fan out.
    """

    def __init__(self) -> None:
        super().__init__()
        from repro.core.parallel import ShardPool

        self.pool = ShardPool(8)
        self.serial = ShardedLabeler(
            lambda capacity: ClassicalPMA(capacity),
            shard_capacity=SHARD_CAPACITY,
        )
        self.pooled = ShardedLabeler(
            lambda capacity: ClassicalPMA(capacity),
            shard_capacity=SHARD_CAPACITY,
            parallel=self.pool,
        )
        self.reference: list[Fraction] = []

    def _compare(self, serial_result, pooled_result):
        from repro.core.operations import move_triples

        serial_items = getattr(serial_result, "results", [serial_result])
        pooled_items = getattr(pooled_result, "results", [pooled_result])
        assert len(serial_items) == len(pooled_items)
        for left, right in zip(serial_items, pooled_items):
            assert left.operation.kind == right.operation.kind
            assert move_triples(left.moves) == move_triples(right.moves)

    @rule(data=st.data())
    def insert_batch(self, data):
        size = len(self.reference)
        ranks = data.draw(
            st.lists(st.integers(1, size + 1), min_size=1, max_size=24),
            label="batch ranks (pre-batch)",
        )
        ranks.sort()
        items = []
        merged = list(self.reference)
        for offset, rank in enumerate(ranks):
            key = _midpoint(merged, rank + offset)
            items.append((rank, key))
            merged.insert(rank + offset - 1, key)
        self._compare(
            self.serial.insert_batch(items), self.pooled.insert_batch(items)
        )
        self.reference = merged

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_batch(self, data):
        size = len(self.reference)
        ranks = data.draw(
            st.lists(
                st.integers(1, size), min_size=1, max_size=min(24, size), unique=True
            ),
            label="delete ranks (pre-batch)",
        )
        self._compare(
            self.serial.delete_batch(ranks), self.pooled.delete_batch(ranks)
        )
        for rank in sorted(ranks, reverse=True):
            self.reference.pop(rank - 1)

    @rule(data=st.data())
    def insert_one(self, data):
        rank = data.draw(
            st.integers(1, len(self.reference) + 1), label="insert rank"
        )
        key = _midpoint(self.reference, rank)
        self._compare(self.serial.insert(rank, key), self.pooled.insert(rank, key))
        self.reference.insert(rank - 1, key)

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def pooled_reads_match(self, data):
        size = len(self.reference)
        rank = data.draw(st.integers(1, size), label="read rank")
        span = data.draw(st.integers(1, 40), label="read span")
        hi = min(size, rank + span - 1)
        assert (
            self.pooled.range_ranks(rank, hi) == self.reference[rank - 1 : hi]
        )
        windows = [(0, self.pooled.num_slots), (0, 1)]
        assert self.pooled.count_ranges(windows) == [
            self.serial.count_range(*window) for window in windows
        ]

    @invariant()
    def twins_identical(self):
        self.serial.check_consistency()
        self.pooled.check_consistency()
        assert self.pooled.elements() == self.reference
        assert self.pooled.labels() == self.serial.labels()
        assert [tuple(shard.slots()) for shard in self.pooled.shards] == [
            tuple(shard.slots()) for shard in self.serial.shards
        ]
        assert self.pooled.restructure_log == self.serial.restructure_log

    def teardown(self):
        self.pool.close()


class VectorTwinMachine(RuleBasedStateMachine):
    """Slab- and vector-backed labelers driven in lockstep stay bit-identical.

    Both twins are sharded Corollary 11 labelers (embedding shards with a
    physical array underneath) built with the same seed; only the
    ``physical_backend`` differs.  Every rule applies the same drawn
    operation to both and compares the move triples just produced; the
    invariant compares labels, elements, per-shard physical slots and slot
    kinds after every step, and runs the vector twin's full consistency
    check — so the bitboard backend is fuzzed through split/merge
    boundaries, not just replayed traces.
    """

    def __init__(self) -> None:
        super().__init__()

        def shards(backend):
            return ShardedLabeler(
                lambda capacity: make_corollary11_labeler(
                    capacity, seed=11, physical_backend=backend
                ),
                shard_capacity=SHARD_CAPACITY,
            )

        self.slab = shards("slab")
        self.vector = shards("vector")
        self.reference: list[Fraction] = []

    def _compare(self, slab_result, vector_result):
        from repro.core.operations import move_triples

        slab_items = getattr(slab_result, "results", [slab_result])
        vector_items = getattr(vector_result, "results", [vector_result])
        assert len(slab_items) == len(vector_items)
        for left, right in zip(slab_items, vector_items):
            assert left.operation.kind == right.operation.kind
            assert move_triples(left.moves) == move_triples(right.moves)

    @rule(data=st.data())
    def insert_one(self, data):
        rank = data.draw(
            st.integers(1, len(self.reference) + 1), label="insert rank"
        )
        key = _midpoint(self.reference, rank)
        self._compare(self.slab.insert(rank, key), self.vector.insert(rank, key))
        self.reference.insert(rank - 1, key)

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_one(self, data):
        rank = data.draw(st.integers(1, len(self.reference)), label="delete rank")
        self._compare(self.slab.delete(rank), self.vector.delete(rank))
        self.reference.pop(rank - 1)

    @rule(data=st.data())
    def insert_batch(self, data):
        size = len(self.reference)
        ranks = data.draw(
            st.lists(st.integers(1, size + 1), min_size=1, max_size=12),
            label="batch ranks (pre-batch)",
        )
        ranks.sort()
        items = []
        merged = list(self.reference)
        for offset, rank in enumerate(ranks):
            key = _midpoint(merged, rank + offset)
            items.append((rank, key))
            merged.insert(rank + offset - 1, key)
        self._compare(
            self.slab.insert_batch(items), self.vector.insert_batch(items)
        )
        self.reference = merged

    @rule(data=st.data())
    def split_burst(self, data):
        """Hammer one rank until at least one shard split fires."""
        rank = data.draw(
            st.integers(1, len(self.reference) + 1), label="burst rank"
        )
        splits_before = self.slab.splits
        for _ in range(SHARD_CAPACITY):
            key = _midpoint(self.reference, rank)
            self._compare(
                self.slab.insert(rank, key), self.vector.insert(rank, key)
            )
            self.reference.insert(rank - 1, key)
            if self.slab.splits > splits_before:
                break

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def vector_reads_match(self, data):
        size = len(self.reference)
        rank = data.draw(st.integers(1, size), label="read rank")
        assert self.vector.select(rank) == self.reference[rank - 1]
        span = data.draw(st.integers(1, 20), label="read span")
        hi = min(size, rank + span - 1)
        assert (
            self.vector.cursor(rank).take(hi - rank + 1)
            == self.reference[rank - 1 : hi]
        )

    @invariant()
    def twins_identical(self):
        self.vector.check_consistency()
        assert self.vector.elements() == self.reference
        assert self.vector.labels() == self.slab.labels()
        assert self.vector.physical_backend == "vector"
        assert self.slab.physical_backend == "slab"
        def layout(labeler):
            return [
                (
                    list(shard.physical.slots()),
                    list(shard.physical.kinds()),
                    list(shard.inner_embedding.physical.slots()),
                    list(shard.inner_embedding.physical.kinds()),
                )
                for shard in labeler.shards
            ]

        assert layout(self.vector) == layout(self.slab)


_settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None
)

TestShardedMachine = ShardedMachine.TestCase
TestShardedMachine.settings = _settings

TestPackedMemoryMapMachine = PackedMemoryMapMachine.TestCase
TestPackedMemoryMapMachine.settings = _settings

TestParallelTwinMachine = ParallelTwinMachine.TestCase
TestParallelTwinMachine.settings = _settings

if vector_available():
    TestVectorTwinMachine = VectorTwinMachine.TestCase
    TestVectorTwinMachine.settings = _settings
