"""The streaming query engine: cursors, rank-select reads, pagination.

Covers every layer the read path threads through: the operation model's
read kinds, ``CostTracker`` query accounting, the ``Cursor`` protocol on
every registered algorithm and composite, the sharded engine's routing
index and cross-shard streaming (with the no-full-probing regression test
at ≥64 shards), the ``PackedMemoryMap`` cursor-backed ordered queries and
pagination, the store service's paged scans, and the ``repro.store scan``
CLI.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import ClassicalPMA
from repro.analysis.runner import run_workload
from repro.applications.ordered_map import PackedMemoryMap
from repro.core import Operation, ShardedLabeler
from repro.core.cost import CostTracker
from repro.core.exceptions import RankError
from repro.core.operations import COUNT_RANGE, LOOKUP, RANGE, SELECT
from repro.workloads import MixedReadWriteWorkload, RangeScanWorkload
from tests.conftest import ALGORITHM_FACTORIES, COMPOSITE_FACTORIES

ALL_FACTORIES = {**ALGORITHM_FACTORIES, **COMPOSITE_FACTORIES}


# ----------------------------------------------------------------------
# Operation model
# ----------------------------------------------------------------------
class TestReadOperations:
    def test_read_kind_constructors(self):
        assert Operation.lookup(3).is_read
        assert Operation.select(3).is_read
        assert Operation.range(2, 9).is_read
        assert Operation.count_range(2, 9).is_read
        assert not Operation.insert(1).is_read
        assert Operation.insert(1).is_write
        assert not Operation.select(1).is_write

    def test_interval_kinds_need_end_rank(self):
        with pytest.raises(ValueError):
            Operation(RANGE, 1)
        with pytest.raises(ValueError):
            Operation(COUNT_RANGE, 1)
        with pytest.raises(ValueError):
            Operation(RANGE, 5, None, 4)  # end before start

    def test_point_kinds_reject_end_rank(self):
        for kind in ("insert", "delete", LOOKUP, SELECT):
            with pytest.raises(ValueError):
                Operation(kind, 1, None, 2)

    def test_span(self):
        assert Operation.range(3, 7).span == 5
        assert Operation.select(3).span == 1


class TestQueryAccounting:
    def test_reads_stay_out_of_move_statistics(self):
        tracker = CostTracker()
        tracker.record(5)
        tracker.record_query(SELECT, 1)
        tracker.record_query(RANGE, 40)
        assert tracker.operations == 1
        assert tracker.total_cost == 5
        assert tracker.queries == 2
        assert tracker.query_items == 41
        stats = tracker.query_statistics()
        assert stats["queries"] == 2.0
        assert stats["select_queries"] == 1.0
        assert stats["range_items"] == 40.0
        assert "queries" in tracker.summary()

    def test_negative_items_rejected(self):
        with pytest.raises(ValueError):
            CostTracker().record_query(SELECT, -1)

    def test_merge_carries_queries(self):
        a, b = CostTracker(), CostTracker()
        a.record_query(SELECT, 1)
        b.record_query(SELECT, 1)
        b.record_query(RANGE, 7)
        merged = a.merge(b)
        assert merged.queries == 3
        assert merged.query_statistics()["select_queries"] == 2.0

    def test_empty_query_statistics(self):
        assert CostTracker().query_statistics() == {}


# ----------------------------------------------------------------------
# The cursor protocol on every registered structure
# ----------------------------------------------------------------------
def _grow(factory, steps=60, seed=5, capacity=200):
    rng = random.Random(seed)
    labeler = factory(capacity)
    reference: list[Fraction] = []
    for _ in range(steps):
        if reference and rng.random() < 0.3:
            rank = rng.randint(1, len(reference))
            labeler.delete(rank)
            reference.pop(rank - 1)
        else:
            rank = rng.randint(1, len(reference) + 1)
            lower = reference[rank - 2] if rank >= 2 else None
            upper = reference[rank - 1] if rank - 1 < len(reference) else None
            if lower is None and upper is None:
                key = Fraction(0)
            elif lower is None:
                key = upper - 1
            elif upper is None:
                key = lower + 1
            else:
                key = (lower + upper) / 2
            labeler.insert(rank, key)
            reference.insert(rank - 1, key)
    return labeler, reference


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_cursor_protocol_matches_reference(name):
    labeler, reference = _grow(ALL_FACTORIES[name])
    size = len(reference)
    assert size > 10
    for rank in (1, 2, size // 2, size - 1, size):
        assert labeler.select(rank) == reference[rank - 1]
        assert list(labeler.iter_from(rank)) == reference[rank - 1 :]
        assert labeler.slot_of_rank(rank) == labeler.slot_of(reference[rank - 1])
    assert list(labeler.iter_from(size + 1)) == []
    assert labeler.count_range(0, labeler.num_slots) == size
    assert labeler.count_rank_range(1, size) == size
    assert labeler.count_rank_range(3, size - 2) == size - 4
    cursor = labeler.cursor(2)
    assert cursor.rank == 2
    assert cursor.take(4) == reference[1:5]
    assert cursor.rank == 6
    assert next(cursor) == reference[5]


@pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
def test_read_rank_validation(name):
    labeler, reference = _grow(ALL_FACTORIES[name], steps=20)
    size = len(reference)
    for bad in (0, size + 1):
        with pytest.raises(RankError):
            labeler.select(bad if bad else 0)
    with pytest.raises(RankError):
        labeler.iter_from(size + 2)
    with pytest.raises(RankError):
        labeler.iter_from(0)


def test_cursor_take_and_exhaustion():
    labeler = ClassicalPMA(32)
    for index in range(10):
        labeler.insert(index + 1, index)
    cursor = labeler.cursor(8)
    assert cursor.take(100) == [7, 8, 9]
    assert cursor.take(5) == []
    with pytest.raises(StopIteration):
        next(cursor)


# ----------------------------------------------------------------------
# Sharded engine: routing index + cross-shard streaming
# ----------------------------------------------------------------------
class _CountingPMA(ClassicalPMA):
    """Shard that counts membership probes and indexed lookups."""

    contains_calls = 0
    slot_of_calls = 0
    rank_of_calls = 0

    def contains(self, element):
        type(self).contains_calls += 1
        return super().contains(element)

    def slot_of(self, element):
        type(self).slot_of_calls += 1
        return super().slot_of(element)

    def rank_of(self, element):
        type(self).rank_of_calls += 1
        return super().rank_of(element)


class TestShardedRouting:
    def _many_shards(self, n=4096):
        labeler = ShardedLabeler(
            lambda cap: _CountingPMA(cap), shard_capacity=32
        )
        labeler.bulk_load(list(range(n)))
        return labeler

    def test_no_full_shard_probing_on_hits(self):
        """Regression (satellite 1): a hit must not probe shard by shard.

        At ≥64 shards every ``slot_of``/``rank_of`` hit goes through the
        reverse index straight to its owning shard: exactly one indexed
        shard query each, zero membership probes — the pre-index loop paid
        ``O(K)`` ``contains`` probes per lookup.
        """
        labeler = self._many_shards()
        assert labeler.shard_count >= 64
        rng = random.Random(3)
        keys = [rng.randrange(4096) for _ in range(100)]
        _CountingPMA.contains_calls = 0
        _CountingPMA.slot_of_calls = 0
        _CountingPMA.rank_of_calls = 0
        for key in keys:
            labeler.slot_of(key)
            labeler.rank_of(key)
        assert _CountingPMA.contains_calls == 0
        # One shard slot_of per hit, plus one more inside the dense
        # shard's own rank_of — constant per hit, independent of K.
        assert _CountingPMA.slot_of_calls == 2 * len(keys)
        assert _CountingPMA.rank_of_calls == len(keys)

    def test_routed_answers_equal_probe_answers(self):
        labeler = self._many_shards(1024)
        for key in range(0, 1024, 37):
            assert labeler.slot_of(key) == labeler._slot_of_probe(key)
            assert labeler.rank_of(key) == labeler._rank_of_probe(key)
        with pytest.raises(KeyError):
            labeler.slot_of("missing")
        with pytest.raises(KeyError):
            labeler.rank_of("missing")

    def test_contains(self):
        labeler = self._many_shards(256)
        assert labeler.contains(17)
        assert not labeler.contains(-1)
        labeler.delete(18)  # rank 18 = key 17
        assert not labeler.contains(17)

    def test_routing_survives_split_merge_churn(self):
        labeler = ShardedLabeler(
            lambda cap: ClassicalPMA(cap), shard_capacity=16
        )
        reference: list[int] = []
        rng = random.Random(9)
        counter = 0
        for phase_inserts in (400, 0):
            for _ in range(400):
                grow = len(reference) < 4 or (
                    phase_inserts and rng.random() < 0.8
                )
                if grow:
                    rank = rng.randint(1, len(reference) + 1)
                    # Keys only need to be unique: check_consistency is
                    # called without a key function, so physical order
                    # against key order is not asserted here — the point
                    # is the routing index across splits and merges.
                    counter += 1
                    key = ("k", counter)
                    labeler.insert(rank, key)
                    reference.insert(rank - 1, key)
                else:
                    rank = rng.randint(1, len(reference))
                    labeler.delete(rank)
                    reference.pop(rank - 1)
        assert labeler.splits >= 3 and labeler.merges >= 1
        labeler.check_consistency()
        for rank, key in enumerate(reference, start=1):
            assert labeler.rank_of(key) == rank

    def test_cross_shard_streaming_is_lazy(self):
        """A short prefix read must not touch shards past the boundary."""
        labeler = ShardedLabeler(
            lambda cap: _CountingPMA(cap), shard_capacity=32
        )
        labeler.bulk_load(list(range(2048)))
        assert labeler.shard_count >= 64

        class _Exploding(Exception):
            pass

        # Poison every shard past the first three: if the stream
        # concatenated shards up front, building it would blow up.
        for shard in list(labeler.shards)[3:]:
            def boom(*args, **kwargs):
                raise _Exploding()

            shard.iter_from = boom
            shard.elements = boom
            shard.slots = boom
        cursor = labeler.cursor(2)
        assert cursor.take(10) == list(range(1, 11))

    def test_sharded_count_range_fenwick_composition(self):
        labeler = ShardedLabeler(
            lambda cap: ClassicalPMA(cap), shard_capacity=32
        )
        n = 1000
        labeler.bulk_load(list(range(n)))
        slots = labeler.slots()
        rng = random.Random(1)
        for _ in range(60):
            lo = rng.randint(0, labeler.num_slots)
            hi = rng.randint(0, labeler.num_slots)
            expected = sum(
                1 for index in range(min(lo, hi), max(lo, hi))
                if slots[index] is not None
            ) if hi > lo else 0
            assert labeler.count_range(lo, hi) == (expected if hi > lo else 0)
        assert labeler.count_range(0, labeler.num_slots) == n
        assert labeler.count_range(-5, 10**9) == n
        assert labeler.count_range(7, 7) == 0


# ----------------------------------------------------------------------
# PackedMemoryMap: cursor-backed ordered queries, no shadow key list
# ----------------------------------------------------------------------
class TestMapQueries:
    def _map(self, keys):
        pmm = PackedMemoryMap(capacity=None, shard_capacity=32)
        for key in keys:
            pmm[key] = key * 2
        return pmm

    def test_point_and_order_queries(self):
        keys = list(range(0, 400, 4))
        pmm = self._map(keys)
        assert pmm.keys() == keys
        assert pmm.select(1) == 0 and pmm.select(len(keys)) == keys[-1]
        assert pmm.rank_of(200) == keys.index(200) + 1
        assert pmm.predecessor(200) == 196
        assert pmm.predecessor(199) == 196
        assert pmm.predecessor(0) is None
        assert pmm.successor(200) == 204
        assert pmm.successor(keys[-1]) is None
        assert pmm.successor(-1) == 0

    def test_range_streams_and_paginates(self):
        keys = list(range(0, 400, 4))
        pmm = self._map(keys)
        full = list(pmm.range(10, 100))
        assert full == [(k, 2 * k) for k in keys if 10 <= k <= 100]
        assert list(pmm.range()) == [(k, 2 * k) for k in keys]
        # limit + after pagination reassembles the same interval.
        pages = []
        after = None
        while True:
            page = list(pmm.range(10, 100, limit=7, after=after))
            if not page:
                break
            pages.extend(page)
            after = page[-1][0]
        assert pages == full
        assert list(pmm.range(10, 100, limit=0)) == []

    def test_count_range(self):
        keys = list(range(0, 100, 2))
        pmm = self._map(keys)
        assert pmm.count_range(0, 98) == 50
        assert pmm.count_range(1, 7) == 3
        assert pmm.count_range(98, 0) == 0
        assert pmm.count_range(200, 300) == 0

    def test_items_stream_in_key_order(self):
        keys = [9, 1, 7, 3, 5]
        pmm = self._map(keys)
        assert list(pmm.items()) == [(k, 2 * k) for k in sorted(keys)]

    def test_mutation_paths_keep_order(self):
        pmm = PackedMemoryMap(capacity=None, shard_capacity=16)
        model: dict = {}
        rng = random.Random(4)
        for step in range(600):
            roll = rng.random()
            if model and roll < 0.25:
                key = rng.choice(sorted(model))
                del pmm[key]
                del model[key]
            elif roll < 0.35:
                items = [(rng.randrange(5000), step) for _ in range(8)]
                pmm.update_many(items)
                model.update(items)
            else:
                key = rng.randrange(5000)
                pmm[key] = step
                model[key] = step
        pmm.check()
        assert pmm.keys() == sorted(model)
        assert dict(pmm.items()) == model
        victims = rng.sample(sorted(model), 20)
        assert pmm.delete_many(victims) == 20
        for key in victims:
            del model[key]
        assert pmm.keys() == sorted(model)


# ----------------------------------------------------------------------
# Store service: paginated scans that let writers through
# ----------------------------------------------------------------------
class TestServicePagination:
    def _service(self, tmp_path):
        from repro.store.service import StoreService
        from repro.store.store import DurableStore

        store = DurableStore(
            tmp_path / "store", algorithm="classical", sync_policy="never"
        )
        store.put_many([(i, i * 10) for i in range(100)])
        return StoreService(store)

    def test_range_scan_pages_reassemble(self, tmp_path):
        service = self._service(tmp_path)
        try:
            expected = [(i, i * 10) for i in range(20, 81)]
            assert service.range_scan(20, 80) == expected
            assert service.count_range(20, 80) == len(expected)
            paged = [
                item
                for page in service.scan_pages(20, 80, page_size=7)
                for item in page
            ]
            assert paged == expected
            assert service.snapshot_items(page_size=9) == service.snapshot_items()
        finally:
            service.close()

    def test_writers_interleave_between_pages(self, tmp_path):
        """A paginated scan must observe a write landing between pages."""
        service = self._service(tmp_path)
        try:
            pages = service.scan_pages(0, 10**9, page_size=50)
            first = next(pages)
            assert len(first) == 50
            # The structure lock is free between pages: this put would
            # deadlock against a scan that pinned the lock for the whole
            # interval, and its key (ahead of the cursor) must be seen.
            service.put(1000, "late")
            rest = [item for page in pages for item in page]
            assert (1000, "late") in rest
        finally:
            service.close()


# ----------------------------------------------------------------------
# Runner + workloads
# ----------------------------------------------------------------------
class TestReadWorkloads:
    def test_mixed_workload_runs_and_verifies(self):
        labeler = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=64)
        workload = MixedReadWriteWorkload(
            1500, read_fraction=0.9, key_choice="zipfian", seed=3
        )
        result = run_workload(labeler, workload, validate_every=500)
        tracker = result.tracker
        assert tracker.queries > 1000
        assert tracker.operations + tracker.queries == 1500
        stats = tracker.query_statistics()
        for kind in (LOOKUP, SELECT, RANGE, COUNT_RANGE):
            assert stats[f"{kind}_queries"] > 0

    def test_mixed_workload_batched_execution(self):
        labeler = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=64)
        workload = MixedReadWriteWorkload(1000, seed=8)
        result = run_workload(labeler, workload, batch_size=16)
        assert result.tracker.queries > 0
        assert (
            result.tracker.operations + result.tracker.queries == 1000
        )

    def test_range_scan_workload(self):
        labeler = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=64)
        result = run_workload(labeler, RangeScanWorkload(800, scan_length=32, seed=2))
        assert result.tracker.query_statistics()["range_queries"] == 400.0
        assert result.tracker.query_items > 400 * 16
        assert result.ops_per_second > 0

    def test_workload_parameter_validation(self):
        with pytest.raises(ValueError):
            MixedReadWriteWorkload(100, read_fraction=1.5)
        with pytest.raises(ValueError):
            MixedReadWriteWorkload(100, key_choice="gaussian")
        with pytest.raises(ValueError):
            MixedReadWriteWorkload(100, scan_fraction=0.8, count_fraction=0.4)
        with pytest.raises(ValueError):
            RangeScanWorkload(100, scan_length=0)
        with pytest.raises(ValueError):
            RangeScanWorkload(100, load_fraction=0.0)

    def test_describe_metadata(self):
        meta = MixedReadWriteWorkload(100, seed=1).describe()
        assert meta["read_fraction"] == 0.95
        assert meta["key_choice"] == "uniform"
        meta = RangeScanWorkload(100).describe()
        assert meta["scan_length"] == 64
