"""Behavioural tests shared by every list-labeling algorithm.

Each algorithm is exercised against a plain sorted-list reference model on
deterministic and randomized operation sequences; after every phase the
structural invariants of Definition 1 (sorted order, slot counts, declared
size) must hold and the stored contents must equal the reference.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.validation import check_labeler, check_moves_consistent

from tests.conftest import ALGORITHM_FACTORIES, ReferenceDriver


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
class TestCommonBehaviour:
    def test_ascending_insertions(self, name):
        driver = ReferenceDriver(ALGORITHM_FACTORIES[name](64))
        for _ in range(64):
            driver.insert(len(driver.reference) + 1)
        driver.check()

    def test_descending_insertions(self, name):
        driver = ReferenceDriver(ALGORITHM_FACTORIES[name](64))
        for _ in range(64):
            driver.insert(1)
        driver.check()

    def test_hammer_insertions(self, name):
        driver = ReferenceDriver(ALGORITHM_FACTORIES[name](96))
        for _ in range(10):
            driver.insert(len(driver.reference) + 1)
        for _ in range(80):
            driver.insert(6)
        driver.check()

    def test_random_mixed_workload(self, name):
        driver = ReferenceDriver(ALGORITHM_FACTORIES[name](128), seed=11)
        for step in range(500):
            driver.random_operation(delete_probability=0.35)
            if step % 100 == 0:
                driver.check()
        driver.check()

    def test_fill_to_capacity_then_drain(self, name):
        capacity = 48
        driver = ReferenceDriver(ALGORITHM_FACTORIES[name](capacity), seed=3)
        while len(driver.reference) < capacity:
            driver.insert(driver.rng.randint(1, len(driver.reference) + 1))
        driver.check()
        while driver.reference:
            driver.delete(driver.rng.randint(1, len(driver.reference)))
        driver.check()
        assert driver.labeler.is_empty

    def test_costs_are_reported_consistently(self, name):
        labeler = ALGORITHM_FACTORIES[name](80)
        reference = []
        rng = random.Random(5)
        for _ in range(60):
            rank = rng.randint(1, len(reference) + 1)
            lower = reference[rank - 2] if rank >= 2 else Fraction(0)
            upper = (
                reference[rank - 1]
                if rank - 1 < len(reference)
                else lower + 2
            )
            key = (Fraction(lower) + Fraction(upper)) / 2
            before = list(labeler.slots())
            result = labeler.insert(rank, key)
            reference.insert(rank - 1, key)
            after = list(labeler.slots())
            check_moves_consistent(before, after, result.moved_elements())
            assert result.cost >= 1  # at least the placement move
        check_labeler(labeler, expected=reference)

    def test_single_element_lifecycle(self, name):
        labeler = ALGORITHM_FACTORIES[name](8)
        labeler.insert(1, Fraction(1))
        assert labeler.elements() == [Fraction(1)]
        labeler.delete(1)
        assert labeler.elements() == []


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_property_random_sequences_match_reference(name, data):
    """Property test: arbitrary short operation sequences match the model."""
    capacity = data.draw(st.integers(min_value=4, max_value=40), label="capacity")
    length = data.draw(st.integers(min_value=1, max_value=60), label="length")
    driver = ReferenceDriver(ALGORITHM_FACTORIES[name](capacity))
    for index in range(length):
        size = len(driver.reference)
        can_insert = size < capacity
        do_delete = size > 0 and (
            not can_insert or data.draw(st.booleans(), label=f"delete-{index}")
        )
        if do_delete:
            rank = data.draw(
                st.integers(min_value=1, max_value=size), label=f"rank-{index}"
            )
            driver.delete(rank)
        else:
            rank = data.draw(
                st.integers(min_value=1, max_value=size + 1), label=f"rank-{index}"
            )
            driver.insert(rank)
    driver.check()
