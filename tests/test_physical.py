"""Unit tests for the embedding's physical array (slot kinds, chain moves).

Every test runs against **all** implementations — the slab-backed
:class:`PhysicalArray`, the seed's list-backed
:class:`ReferencePhysicalArray`, and (when numpy is importable) the
bitboard-backed :class:`VectorPhysicalArray` — via the ``impl`` fixture,
so the differential oracle and the vector backend are held to the same
contract as the production slab.
"""

from __future__ import annotations

import pytest

from repro.core.exceptions import InvariantViolation
from repro.core.operations import Move
from repro.core.physical import (
    BUFFER,
    F_SLOT,
    R_EMPTY,
    PhysicalArray,
    ReferencePhysicalArray,
)
from repro.core.physical_backends import vector_available

IMPLEMENTATIONS = {
    "slab": PhysicalArray,
    "reference": ReferencePhysicalArray,
}
if vector_available():
    from repro.core.physical_vector import VectorPhysicalArray

    IMPLEMENTATIONS["vector"] = VectorPhysicalArray


@pytest.fixture(params=sorted(IMPLEMENTATIONS))
def impl(request):
    """The physical-array class under test."""
    return IMPLEMENTATIONS[request.param]


def build_array(spec: str, cls=PhysicalArray):
    """Build an array from a compact spec string.

    Characters: ``f`` free F-slot, ``b`` dummy buffer, ``.`` R-empty;
    occupied slots are set afterwards via ``put_element``.
    """
    array = cls(len(spec))
    kinds = {"f": F_SLOT, "b": BUFFER, ".": R_EMPTY}
    array.initialize_kinds((i, kinds[c]) for i, c in enumerate(spec))
    return array


class TestBasics:
    def test_counts(self, impl):
        array = build_array("fbf.b.", impl)
        assert array.f_slot_count == 2
        assert array.buffer_count == 2
        assert array.dummy_buffer_count == 2
        assert array.buffered_element_count == 0

    def test_put_take_move(self, impl):
        array = build_array("ff.f", impl)
        array.put_element(0, 10)
        array.put_element(1, 20)
        assert array.elements() == [10, 20]
        array.move_element(1, 3)
        assert array.elements() == [10, 20]
        assert array.position_of(20) == 3
        array.take_element(0)
        assert array.elements() == [20]

    def test_put_on_occupied_rejected(self, impl):
        array = build_array("ff", impl)
        array.put_element(0, 1)
        with pytest.raises(InvariantViolation):
            array.put_element(0, 2)

    def test_f_coordinates(self, impl):
        array = build_array("bf.fbf", impl)
        assert array.f_position(0) == 1
        assert array.f_position(1) == 3
        assert array.f_position(2) == 5
        assert array.f_index_of(3) == 1
        with pytest.raises(ValueError):
            array.f_index_of(0)

    def test_token_rank_skips_empty_slots(self, impl):
        array = build_array("f.bf", impl)
        assert array.token_rank(0) == 1
        assert array.token_rank(2) == 2
        assert array.token_rank(3) == 3
        with pytest.raises(ValueError):
            array.token_rank(1)

    def test_element_at_rank(self, impl):
        array = build_array("ffff", impl)
        array.put_element(1, 5)
        array.put_element(3, 9)
        assert array.element_at_rank(1) == 5
        assert array.element_at_rank(2) == 9


class TestNearestDummy:
    def test_prefers_closer_side_in_token_order(self, impl):
        array = build_array("bffb", impl)
        array.put_element(1, 1)
        array.put_element(2, 2)
        assert array.nearest_dummy_buffer(1) == 0
        assert array.nearest_dummy_buffer(2) == 3

    def test_returns_none_without_dummies(self, impl):
        array = build_array("ff", impl)
        assert array.nearest_dummy_buffer(0) is None


class TestChainMove:
    def test_simple_move_without_deadweight(self, impl):
        array = build_array("fbf", impl)
        array.put_element(0, 10)
        cost = array.chain_move(0, 1)
        assert cost == 1
        assert array.total_deadweight_moves == 0
        # The element now reads at F-index 1 and order is preserved.
        assert array.f_contents() == [None, 10]
        array.check_consistency()

    def test_rightward_move_shifts_buffered_elements(self, impl):
        # Figure 2: an element hops over occupied buffer slots; the buffered
        # elements shift and are counted as deadweight.
        array = build_array("fbbf", impl)
        array.put_element(0, 10)
        array.put_element(1, 20)
        array.put_element(2, 30)
        cost = array.chain_move(0, 1)
        assert cost == 3  # the element plus two deadweight moves
        assert array.total_deadweight_moves == 2
        assert array.elements() == [10, 20, 30]
        assert array.f_contents() == [None, 10]
        array.check_consistency()

    def test_leftward_move_shifts_buffered_elements(self, impl):
        array = build_array("fbbf", impl)
        array.put_element(3, 40)
        array.put_element(1, 20)
        array.put_element(2, 30)
        cost = array.chain_move(3, 0)
        assert cost == 3
        assert array.elements() == [20, 30, 40]
        assert array.f_contents() == [40, None]
        array.check_consistency()

    def test_incorporation_from_buffer_slot(self, impl):
        array = build_array("fbf", impl)
        array.put_element(0, 10)
        array.put_element(1, 15)  # buffered element
        cost = array.chain_move(1, 1)  # incorporate at F-index 1
        assert cost >= 1
        assert array.f_contents() == [10, 15]
        assert array.buffered_element_count == 0
        assert array.dummy_buffer_count == 1
        array.check_consistency()

    def test_kind_counts_preserved(self, impl):
        array = build_array("fbbfbf", impl)
        array.put_element(0, 1)
        array.put_element(1, 2)
        array.put_element(2, 3)
        before = (array.f_slot_count, array.buffer_count)
        array.chain_move(0, 2)
        assert (array.f_slot_count, array.buffer_count) == before
        array.check_consistency()

    def test_move_onto_occupied_f_slot_rejected(self, impl):
        array = build_array("ff", impl)
        array.put_element(0, 1)
        array.put_element(1, 2)
        with pytest.raises(InvariantViolation):
            array.chain_move(0, 1)

    def test_long_sparse_chain_matches_between_implementations(self):
        # A span far above the scan cutoff forces the slab's Fenwick-guided
        # chain path; the reference executes the same move with its scans.
        spec = ["."] * 512
        for position in (0, 2, 4):
            spec[position] = "f"
        for position in (1, 3, 100, 300):
            spec[position] = "b"
        spec[500] = "f"
        spec = "".join(spec)
        results = {}
        for name, cls in IMPLEMENTATIONS.items():
            array = build_array(spec, cls)
            array.put_element(0, "pivot")
            array.put_element(100, "rider")
            sink: list[Move] = []
            array.move_sink = sink
            cost = array.chain_move(0, 3)  # rightmost F label: position 500
            array.move_sink = None
            results[name] = (cost, sink, list(array.kinds()), list(array.slots()))
        for name in IMPLEMENTATIONS:
            assert results[name] == results["reference"], name


class TestShellReplay:
    def test_placement_and_removal(self, impl):
        array = build_array("f..", impl)
        cost = array.apply_shell_moves([Move("token-1", None, 1)])
        assert cost == 0
        assert array.kind(1) == BUFFER
        cost = array.apply_shell_moves([Move("token-1", 1, None)])
        assert cost == 0
        assert array.kind(1) == R_EMPTY

    def test_token_move_carries_content(self, impl):
        array = build_array("f.b", impl)
        array.put_element(0, 10)
        cost = array.apply_shell_moves([Move("token-f", 0, 1)])
        assert cost == 1
        assert array.kind(0) == R_EMPTY
        assert array.kind(1) == F_SLOT
        assert array.position_of(10) == 1

    def test_move_onto_nonempty_rejected(self, impl):
        array = build_array("fb", impl)
        with pytest.raises(InvariantViolation):
            array.apply_shell_moves([Move("t", 0, 1)])

    def test_remove_and_replace_token_restores_content(self, impl):
        array = build_array("f..", impl)
        array.put_element(0, 7)
        cost = array.apply_shell_moves(
            [Move("token", 0, None), Move("token", None, 2)]
        )
        assert cost == 1
        assert array.kind(2) == F_SLOT
        assert array.position_of(7) == 2
