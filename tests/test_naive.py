"""Tests for the naive baseline labelers."""

from __future__ import annotations

from repro.algorithms import NaiveLabeler, SparseNaiveLabeler

from tests.conftest import ReferenceDriver


class TestNaiveLabeler:
    def test_append_is_cheap(self):
        labeler = NaiveLabeler(128)
        costs = [labeler.insert(i + 1, i).cost for i in range(100)]
        assert all(cost == 1 for cost in costs)

    def test_front_insert_is_linear(self):
        labeler = NaiveLabeler(128)
        for i in range(100):
            labeler.insert(i + 1, i)
        cost = labeler.insert(1, -1).cost
        assert cost == 101  # every element shifted plus the placement

    def test_delete_shifts_suffix(self):
        labeler = NaiveLabeler(16)
        for i in range(10):
            labeler.insert(i + 1, i)
        cost = labeler.delete(1).cost
        assert cost == 9
        assert labeler.elements() == list(range(1, 10))

    def test_elements_stay_packed(self):
        driver = ReferenceDriver(NaiveLabeler(32), seed=9)
        for _ in range(100):
            driver.random_operation()
        driver.check()
        slots = driver.labeler.slots()
        occupied = [i for i, item in enumerate(slots) if item is not None]
        assert occupied == list(range(len(occupied)))


class TestSparseNaiveLabeler:
    def test_insert_into_gap_is_constant(self):
        labeler = SparseNaiveLabeler(64)
        labeler.insert(1, 10)
        labeler.insert(2, 20)
        cost = labeler.insert(2, 15).cost
        assert cost == 1

    def test_rebuild_when_neighbourhood_packed(self):
        labeler = SparseNaiveLabeler(64)
        for i in range(32):
            labeler.insert(i + 1, i * 100)
        # Hammer one gap until a full rebuild is forced at least once; the
        # keys decrease because each insertion lands *before* the previous one.
        costs = [labeler.insert(5, 399 - i).cost for i in range(20)]
        assert max(costs) > 10  # at least one rebuild happened
        assert labeler.elements() == sorted(labeler.elements())

    def test_mixed_workload_consistency(self):
        driver = ReferenceDriver(SparseNaiveLabeler(48), seed=4)
        for _ in range(200):
            driver.random_operation()
        driver.check()
