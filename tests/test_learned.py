"""Tests for the learning-augmented list labeler (Corollary 12's X)."""

from __future__ import annotations

from repro.algorithms import ClassicalPMA, ExactPredictor, LearnedLabeler, NoisyPredictor
from repro.analysis import run_workload
from repro.workloads import PredictedWorkload

from tests.conftest import ReferenceDriver


def _labeler_for(workload: PredictedWorkload) -> LearnedLabeler:
    return LearnedLabeler(workload.capacity, predictor=workload.predictor)


class TestPredictionSteering:
    def test_predicted_slot_is_monotone_in_rank(self):
        keys = list(range(1, 101))
        labeler = LearnedLabeler(100, predictor=ExactPredictor(keys))
        slots = [labeler.predicted_slot(key) for key in keys]
        assert slots == sorted(slots)

    def test_unknown_key_falls_back_gracefully(self):
        labeler = LearnedLabeler(32, predictor=ExactPredictor(range(32)))
        assert labeler.predicted_slot("unseen-key") is None

    def test_rebalance_targets_valid(self):
        keys = list(range(1, 65))
        labeler = LearnedLabeler(64, predictor=NoisyPredictor(keys, eta=4))
        driver = ReferenceDriver(labeler, seed=1)
        for _ in range(50):
            driver.random_operation(delete_probability=0.1)
        driver.check()


class TestErrorDependence:
    def test_good_predictions_beat_bad_predictions(self):
        """Amortized cost must grow with the prediction error η (Corollary 12)."""
        n = 1024
        good_workload = PredictedWorkload(n, eta=1, seed=2)
        bad_workload = PredictedWorkload(n, eta=n // 2, seed=2)
        good = run_workload(_labeler_for(good_workload), good_workload)
        bad = run_workload(_labeler_for(bad_workload), bad_workload)
        assert good.amortized_cost < bad.amortized_cost

    def test_exact_predictions_beat_classical_pma(self):
        n = 1024
        workload = PredictedWorkload(n, eta=0, seed=4)
        learned = run_workload(_labeler_for(workload), workload)
        classical = run_workload(ClassicalPMA(n), PredictedWorkload(n, eta=0, seed=4))
        assert learned.amortized_cost < classical.amortized_cost

    def test_contents_match_reference_on_predicted_workload(self):
        n = 256
        workload = PredictedWorkload(n, eta=8, seed=6)
        result = run_workload(_labeler_for(workload), workload, validate_every=64)
        assert sorted(result.final_keys) == result.final_keys
