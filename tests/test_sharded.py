"""Unit tests for the sharded unbounded-capacity labeling engine."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import ClassicalPMA, NaiveLabeler, make_sharded_labeler
from repro.core import ShardedLabeler
from repro.core.exceptions import BatchError, RankError
from repro.core.validation import check_labeler, check_moves_consistent


def classical_factory(capacity):
    return ClassicalPMA(capacity)


def make(shard_capacity=16, **kwargs):
    return ShardedLabeler(classical_factory, shard_capacity=shard_capacity, **kwargs)


class TestConstruction:
    def test_shard_capacity_floor(self):
        with pytest.raises(ValueError):
            ShardedLabeler(classical_factory, shard_capacity=4)

    def test_split_density_bounds(self):
        with pytest.raises(ValueError):
            make(split_density=0.0)
        with pytest.raises(ValueError):
            make(split_density=1.5)

    def test_merge_floor_must_stay_below_half_threshold(self):
        with pytest.raises(ValueError):
            make(shard_capacity=16, split_density=0.5, merge_density=0.45)

    def test_default_factory_helper(self):
        labeler = make_sharded_labeler(shard_capacity=16)
        labeler.insert(1, Fraction(1))
        assert labeler.elements() == [Fraction(1)]
        assert isinstance(labeler.shards[0], ClassicalPMA)

    def test_starts_with_one_empty_shard(self):
        labeler = make()
        assert labeler.shard_count == 1
        assert labeler.is_empty
        assert labeler.num_slots == labeler.shards[0].num_slots


class TestUnboundedGrowth:
    def test_grows_far_past_one_shard_capacity(self):
        labeler = make(shard_capacity=16)
        total = 20 * 16
        for index in range(total):
            labeler.insert(index + 1, index)
        assert labeler.size == total
        assert labeler.elements() == list(range(total))
        assert labeler.splits >= 3
        assert labeler.capacity > total  # always headroom, never full
        assert not labeler.is_full
        check_labeler(labeler, expected=list(range(total)))

    def test_every_shard_respects_the_density_ceiling(self):
        labeler = make(shard_capacity=16)
        for index in range(300):
            labeler.insert(1, 300 - index)  # adversarial front inserts
        assert max(labeler.shard_sizes()) <= labeler.split_threshold
        check_labeler(labeler, expected=list(range(1, 301)))

    def test_rank_validation_still_applies(self):
        labeler = make()
        with pytest.raises(RankError):
            labeler.insert(2, "x")
        with pytest.raises(RankError):
            labeler.delete(1)


class TestMergePolicy:
    def drained(self, shard_capacity=16):
        labeler = make(shard_capacity=shard_capacity)
        labeler.bulk_load(list(range(12 * shard_capacity)))
        while labeler.size > shard_capacity // 2:
            labeler.delete(1 + (labeler.size // 3))
        return labeler

    def test_deletions_merge_underflowing_shards(self):
        labeler = self.drained()
        assert labeler.merges >= 1
        assert labeler.shard_count < 12
        if labeler.shard_count > 1:
            assert min(labeler.shard_sizes()) >= labeler.merge_floor
        check_labeler(labeler)

    def test_drain_to_empty_leaves_one_shard(self):
        labeler = make()
        for index in range(60):
            labeler.insert(index + 1, index)
        while labeler.size:
            labeler.delete(labeler.size)
        assert labeler.shard_count == 1
        assert labeler.is_empty
        check_labeler(labeler, expected=[])


class TestRoutingAndLabels:
    def filled(self):
        labeler = make(shard_capacity=16)
        for index in range(200):
            labeler.insert(index + 1, index * 10)
        return labeler

    def test_rank_and_slot_lookups(self):
        labeler = self.filled()
        slots = labeler.slots()
        for rank, element in enumerate(labeler.elements(), start=1):
            assert labeler.rank_of(element) == rank
            assert slots[labeler.slot_of(element)] == element
        with pytest.raises(KeyError):
            labeler.slot_of("missing")
        with pytest.raises(KeyError):
            labeler.rank_of("missing")

    def test_composed_labels_are_monotone_and_recoverable(self):
        labeler = self.filled()
        labels = labeler.labels()
        shift = labeler.label_shift
        ordered = [labels[element] for element in labeler.elements()]
        assert ordered == sorted(ordered)
        assert len(set(ordered)) == len(ordered)
        # High bits name the shard, low bits the local slot.
        for index, shard in enumerate(labeler.shards):
            for element, local in shard.labels().items():
                assert labels[element] == (index << shift) | local

    def test_slots_view_is_the_shard_concatenation(self):
        labeler = self.filled()
        flat = []
        for shard in labeler.shards:
            flat.extend(shard.slots())
        assert list(labeler.slots()) == flat
        assert labeler.num_slots == len(flat)


class TestMoveAccounting:
    def test_split_moves_are_reported(self):
        labeler = make(shard_capacity=16)
        for index in range(labeler.split_threshold):
            labeler.insert(index + 1, index)
        before = list(labeler.slots())
        result = labeler.insert(1, -1)  # forces the split
        after = list(labeler.slots())
        assert labeler.splits == 1
        check_moves_consistent(before, after, result.moved_elements())
        assert result.cost >= labeler.split_threshold  # whole shard rewritten

    def test_restructure_log_matches_counters(self):
        labeler = make(shard_capacity=16)
        for index in range(200):
            labeler.insert(index + 1, index)
        while labeler.size > 20:
            labeler.delete(1)
        kinds = {kind for kind, _ in labeler.restructure_log}
        assert kinds <= {"split", "merge", "borrow", "rewrite"}
        events = (
            labeler.splits + labeler.merges + labeler.borrows + labeler.rewrites
        )
        assert len(labeler.restructure_log) == events
        assert labeler.restructure_moves == sum(
            moved for _, moved in labeler.restructure_log
        )
        stats = labeler.shard_statistics()
        assert stats["splits"] == labeler.splits
        assert stats["merges"] == labeler.merges
        assert stats["borrows"] == labeler.borrows
        assert stats["rewrites"] == labeler.rewrites


class TestBatches:
    def test_cross_shard_insert_batch_matches_loop_semantics(self):
        batched = make(shard_capacity=16)
        looped = make(shard_capacity=16)
        base = [Fraction(i) for i in range(100)]
        batched.bulk_load(base)
        looped.bulk_load(base)
        items = [
            (1, Fraction(-2)),
            (1, Fraction(-1)),
            (40, Fraction(77, 2)),
            (80, Fraction(157, 2)),
            (101, Fraction(1000)),
        ]
        batched.insert_batch(items)
        for offset, (rank, element) in enumerate(items):
            looped.insert(rank + offset, element)
        assert batched.elements() == looped.elements()
        check_labeler(batched, expected=looped.elements())

    def test_large_batch_overflows_into_fresh_shards(self):
        labeler = make(shard_capacity=16)
        result = labeler.insert_batch([(1, index) for index in range(200)])
        assert result.count == 200
        assert labeler.elements() == list(range(200))
        assert labeler.shard_count > 1
        assert max(labeler.shard_sizes()) <= labeler.split_threshold

    def test_insert_batch_rejects_bad_rank_before_mutating(self):
        labeler = make()
        labeler.insert(1, 0)
        with pytest.raises(BatchError):
            labeler.insert_batch([(1, 1), (5, 2)])
        assert labeler.elements() == [0]

    def test_delete_batch_across_shards(self):
        labeler = make(shard_capacity=16)
        labeler.bulk_load(list(range(120)))
        ranks = list(range(1, 121, 2))  # every odd pre-batch rank
        labeler.delete_batch(ranks)
        assert labeler.elements() == list(range(1, 120, 2))
        check_labeler(labeler)

    def test_delete_batch_rejects_duplicates(self):
        labeler = make()
        labeler.insert(1, 0)
        labeler.insert(2, 1)
        with pytest.raises(BatchError):
            labeler.delete_batch([1, 1])
        assert labeler.size == 2


class TestBulkLoad:
    def test_bulk_load_spreads_evenly(self):
        labeler = make(shard_capacity=16)
        labeler.bulk_load(list(range(100)))
        sizes = labeler.shard_sizes()
        assert labeler.elements() == list(range(100))
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) <= labeler.split_threshold
        check_labeler(labeler, expected=list(range(100)))

    def test_bulk_load_requires_empty(self):
        labeler = make()
        labeler.insert(1, 0)
        with pytest.raises(Exception):
            labeler.bulk_load([1, 2, 3])

    def test_bulk_load_cost_is_one_placement_per_element(self):
        labeler = make(shard_capacity=16)
        assert labeler.bulk_load(list(range(64))) == 64


class TestNaiveShards:
    def test_left_packed_shards_survive_restructures(self):
        # Regression: NaiveLabeler.bulk_load must left-pack, or the first
        # insert after a split corrupts the shard.
        labeler = ShardedLabeler(lambda cap: NaiveLabeler(cap), shard_capacity=16)
        for index in range(80):
            labeler.insert(1, 80 - index)
        assert labeler.elements() == list(range(1, 81))
        check_labeler(labeler)


class TestRestructureKinds:
    """Regression: _record_restructure must not misclassify kinds."""

    def test_borrow_is_not_a_merge(self):
        # Engineer a merge step whose union exceeds the split threshold:
        # the underflowing shard borrows (the pair is re-split evenly,
        # nothing is merged), which used to count as a "merge".
        labeler = make(shard_capacity=32, merge_density=0.12)
        labeler.bulk_load(list(range(40)))
        # Two shards; drain one below the merge floor while keeping the
        # combined size above the split threshold.
        assert labeler.shard_count >= 2
        while labeler.merges + labeler.borrows == 0:
            labeler.delete(labeler.size)
        kind = labeler.restructure_log[-1][0]
        if kind == "borrow":
            assert labeler.borrows >= 1
            assert labeler.merges == 0
        else:
            assert kind == "merge"

    def test_borrow_recorded_when_union_exceeds_threshold(self):
        labeler = make(shard_capacity=64, merge_density=0.1)
        # One nearly full shard next to one drained to the floor: the
        # union exceeds the split threshold, so the rebalance must borrow.
        full = list(range(labeler.split_threshold))
        labeler.bulk_load(full)
        # bulk_load spreads evenly; rebuild adjacency by restoring a
        # snapshot with the skew we need.
        state = labeler.snapshot()
        big = ShardedLabeler(classical_factory, shard_capacity=64)
        big.restore(state)
        while big.shard_sizes()[-1] >= big.merge_floor:
            big.delete(big.size)
        assert big.borrows + big.merges >= 1
        for kind, _ in big.restructure_log:
            assert kind in ("merge", "borrow")
        if big.borrows:
            assert "borrow" in {kind for kind, _ in big.restructure_log}

    def test_batch_absorption_is_a_rewrite_not_a_split(self):
        labeler = make(shard_capacity=16)
        batch = [(1, Fraction(index)) for index in range(14)]
        labeler.insert_batch(batch)
        # The overflowing sub-batch was absorbed through a region rewrite.
        assert labeler.rewrites == 1
        assert labeler.splits == 0
        assert labeler.restructure_log[0][0] == "rewrite"
        # Singleton overflow still records a genuine split.
        for index in range(14, 14 + labeler.split_threshold):
            labeler.insert(labeler.size + 1, Fraction(index))
        assert labeler.splits >= 1

    def test_statistics_and_snapshot_round_trip_new_counters(self):
        labeler = make(shard_capacity=16)
        labeler.insert_batch([(1, Fraction(index)) for index in range(14)])
        stats = labeler.shard_statistics()
        assert stats["rewrites"] == labeler.rewrites == 1
        restored = make(shard_capacity=16)
        restored.restore(labeler.snapshot())
        assert restored.rewrites == labeler.rewrites
        assert restored.borrows == labeler.borrows


class _RewriteSpy(ShardedLabeler):
    """Records the chunk shapes of every region rewrite."""

    def __init__(self, *args, **kwargs):
        self.rewritten_chunks: list[list[int]] = []
        super().__init__(*args, **kwargs)

    def _rewrite_region(self, lo, hi, chunks, fresh=frozenset()):
        self.rewritten_chunks.append([len(chunk) for chunk in chunks])
        return super()._rewrite_region(lo, hi, chunks, fresh)


class TestEmptyRegionRewrites:
    """Regression: a drained region must never rebuild an empty shard."""

    def test_even_chunks_of_nothing_is_no_chunks(self):
        labeler = make()
        assert labeler._even_chunks([]) == []

    def test_delete_storm_never_installs_empty_shards(self):
        spy = _RewriteSpy(classical_factory, shard_capacity=16)
        for index in range(96):
            spy.insert(index + 1, index)
        assert spy.shard_count >= 4
        # Empty two adjacent interior shards in one pre-batch-rank batch:
        # the trailing rebalance then merges drained neighbours, which
        # used to rebuild them as a single empty shard via _even_chunks.
        sizes = spy.shard_sizes()
        start = 1 + sizes[0]
        count = sizes[1] + sizes[2]
        spy.delete_batch(list(range(start, start + count)))
        spy.check_consistency()
        for shapes in spy.rewritten_chunks:
            assert all(size > 0 for size in shapes), shapes
        assert all(size > 0 for size in spy.shard_sizes())

    def test_draining_everything_leaves_the_canonical_empty_engine(self):
        labeler = make(shard_capacity=16)
        for index in range(64):
            labeler.insert(index + 1, index)
        labeler.delete_batch(list(range(1, 65)))
        assert labeler.size == 0
        assert labeler.shard_count == 1
        labeler.check_consistency()
        labeler.insert(1, Fraction(5))
        assert labeler.elements() == [Fraction(5)]

    def test_bulk_load_empty_keeps_one_fresh_shard(self):
        labeler = make()
        assert labeler.bulk_load([]) == 0
        assert labeler.shard_count == 1
        labeler.check_consistency()
        labeler.insert(1, 7)
        assert labeler.elements() == [7]
