"""Unit tests for the sharded unbounded-capacity labeling engine."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import ClassicalPMA, NaiveLabeler, make_sharded_labeler
from repro.core import ShardedLabeler
from repro.core.exceptions import BatchError, RankError
from repro.core.validation import check_labeler, check_moves_consistent


def classical_factory(capacity):
    return ClassicalPMA(capacity)


def make(shard_capacity=16, **kwargs):
    return ShardedLabeler(classical_factory, shard_capacity=shard_capacity, **kwargs)


class TestConstruction:
    def test_shard_capacity_floor(self):
        with pytest.raises(ValueError):
            ShardedLabeler(classical_factory, shard_capacity=4)

    def test_split_density_bounds(self):
        with pytest.raises(ValueError):
            make(split_density=0.0)
        with pytest.raises(ValueError):
            make(split_density=1.5)

    def test_merge_floor_must_stay_below_half_threshold(self):
        with pytest.raises(ValueError):
            make(shard_capacity=16, split_density=0.5, merge_density=0.45)

    def test_default_factory_helper(self):
        labeler = make_sharded_labeler(shard_capacity=16)
        labeler.insert(1, Fraction(1))
        assert labeler.elements() == [Fraction(1)]
        assert isinstance(labeler.shards[0], ClassicalPMA)

    def test_starts_with_one_empty_shard(self):
        labeler = make()
        assert labeler.shard_count == 1
        assert labeler.is_empty
        assert labeler.num_slots == labeler.shards[0].num_slots


class TestUnboundedGrowth:
    def test_grows_far_past_one_shard_capacity(self):
        labeler = make(shard_capacity=16)
        total = 20 * 16
        for index in range(total):
            labeler.insert(index + 1, index)
        assert labeler.size == total
        assert labeler.elements() == list(range(total))
        assert labeler.splits >= 3
        assert labeler.capacity > total  # always headroom, never full
        assert not labeler.is_full
        check_labeler(labeler, expected=list(range(total)))

    def test_every_shard_respects_the_density_ceiling(self):
        labeler = make(shard_capacity=16)
        for index in range(300):
            labeler.insert(1, 300 - index)  # adversarial front inserts
        assert max(labeler.shard_sizes()) <= labeler.split_threshold
        check_labeler(labeler, expected=list(range(1, 301)))

    def test_rank_validation_still_applies(self):
        labeler = make()
        with pytest.raises(RankError):
            labeler.insert(2, "x")
        with pytest.raises(RankError):
            labeler.delete(1)


class TestMergePolicy:
    def drained(self, shard_capacity=16):
        labeler = make(shard_capacity=shard_capacity)
        labeler.bulk_load(list(range(12 * shard_capacity)))
        while labeler.size > shard_capacity // 2:
            labeler.delete(1 + (labeler.size // 3))
        return labeler

    def test_deletions_merge_underflowing_shards(self):
        labeler = self.drained()
        assert labeler.merges >= 1
        assert labeler.shard_count < 12
        if labeler.shard_count > 1:
            assert min(labeler.shard_sizes()) >= labeler.merge_floor
        check_labeler(labeler)

    def test_drain_to_empty_leaves_one_shard(self):
        labeler = make()
        for index in range(60):
            labeler.insert(index + 1, index)
        while labeler.size:
            labeler.delete(labeler.size)
        assert labeler.shard_count == 1
        assert labeler.is_empty
        check_labeler(labeler, expected=[])


class TestRoutingAndLabels:
    def filled(self):
        labeler = make(shard_capacity=16)
        for index in range(200):
            labeler.insert(index + 1, index * 10)
        return labeler

    def test_rank_and_slot_lookups(self):
        labeler = self.filled()
        slots = labeler.slots()
        for rank, element in enumerate(labeler.elements(), start=1):
            assert labeler.rank_of(element) == rank
            assert slots[labeler.slot_of(element)] == element
        with pytest.raises(KeyError):
            labeler.slot_of("missing")
        with pytest.raises(KeyError):
            labeler.rank_of("missing")

    def test_composed_labels_are_monotone_and_recoverable(self):
        labeler = self.filled()
        labels = labeler.labels()
        shift = labeler.label_shift
        ordered = [labels[element] for element in labeler.elements()]
        assert ordered == sorted(ordered)
        assert len(set(ordered)) == len(ordered)
        # High bits name the shard, low bits the local slot.
        for index, shard in enumerate(labeler.shards):
            for element, local in shard.labels().items():
                assert labels[element] == (index << shift) | local

    def test_slots_view_is_the_shard_concatenation(self):
        labeler = self.filled()
        flat = []
        for shard in labeler.shards:
            flat.extend(shard.slots())
        assert list(labeler.slots()) == flat
        assert labeler.num_slots == len(flat)


class TestMoveAccounting:
    def test_split_moves_are_reported(self):
        labeler = make(shard_capacity=16)
        for index in range(labeler.split_threshold):
            labeler.insert(index + 1, index)
        before = list(labeler.slots())
        result = labeler.insert(1, -1)  # forces the split
        after = list(labeler.slots())
        assert labeler.splits == 1
        check_moves_consistent(before, after, result.moved_elements())
        assert result.cost >= labeler.split_threshold  # whole shard rewritten

    def test_restructure_log_matches_counters(self):
        labeler = make(shard_capacity=16)
        for index in range(200):
            labeler.insert(index + 1, index)
        while labeler.size > 20:
            labeler.delete(1)
        kinds = {kind for kind, _ in labeler.restructure_log}
        assert kinds <= {"split", "merge"}
        assert len(labeler.restructure_log) == labeler.splits + labeler.merges
        assert labeler.restructure_moves == sum(
            moved for _, moved in labeler.restructure_log
        )
        stats = labeler.shard_statistics()
        assert stats["splits"] == labeler.splits
        assert stats["merges"] == labeler.merges


class TestBatches:
    def test_cross_shard_insert_batch_matches_loop_semantics(self):
        batched = make(shard_capacity=16)
        looped = make(shard_capacity=16)
        base = [Fraction(i) for i in range(100)]
        batched.bulk_load(base)
        looped.bulk_load(base)
        items = [
            (1, Fraction(-2)),
            (1, Fraction(-1)),
            (40, Fraction(77, 2)),
            (80, Fraction(157, 2)),
            (101, Fraction(1000)),
        ]
        batched.insert_batch(items)
        for offset, (rank, element) in enumerate(items):
            looped.insert(rank + offset, element)
        assert batched.elements() == looped.elements()
        check_labeler(batched, expected=looped.elements())

    def test_large_batch_overflows_into_fresh_shards(self):
        labeler = make(shard_capacity=16)
        result = labeler.insert_batch([(1, index) for index in range(200)])
        assert result.count == 200
        assert labeler.elements() == list(range(200))
        assert labeler.shard_count > 1
        assert max(labeler.shard_sizes()) <= labeler.split_threshold

    def test_insert_batch_rejects_bad_rank_before_mutating(self):
        labeler = make()
        labeler.insert(1, 0)
        with pytest.raises(BatchError):
            labeler.insert_batch([(1, 1), (5, 2)])
        assert labeler.elements() == [0]

    def test_delete_batch_across_shards(self):
        labeler = make(shard_capacity=16)
        labeler.bulk_load(list(range(120)))
        ranks = list(range(1, 121, 2))  # every odd pre-batch rank
        labeler.delete_batch(ranks)
        assert labeler.elements() == list(range(1, 120, 2))
        check_labeler(labeler)

    def test_delete_batch_rejects_duplicates(self):
        labeler = make()
        labeler.insert(1, 0)
        labeler.insert(2, 1)
        with pytest.raises(BatchError):
            labeler.delete_batch([1, 1])
        assert labeler.size == 2


class TestBulkLoad:
    def test_bulk_load_spreads_evenly(self):
        labeler = make(shard_capacity=16)
        labeler.bulk_load(list(range(100)))
        sizes = labeler.shard_sizes()
        assert labeler.elements() == list(range(100))
        assert max(sizes) - min(sizes) <= 1
        assert max(sizes) <= labeler.split_threshold
        check_labeler(labeler, expected=list(range(100)))

    def test_bulk_load_requires_empty(self):
        labeler = make()
        labeler.insert(1, 0)
        with pytest.raises(Exception):
            labeler.bulk_load([1, 2, 3])

    def test_bulk_load_cost_is_one_placement_per_element(self):
        labeler = make(shard_capacity=16)
        assert labeler.bulk_load(list(range(64))) == 64


class TestNaiveShards:
    def test_left_packed_shards_survive_restructures(self):
        # Regression: NaiveLabeler.bulk_load must left-pack, or the first
        # insert after a split corrupts the shard.
        labeler = ShardedLabeler(lambda cap: NaiveLabeler(cap), shard_capacity=16)
        for index in range(80):
            labeler.insert(1, 80 - index)
        assert labeler.elements() == list(range(1, 81))
        check_labeler(labeler)
