"""Tests for the ``repro.perf`` subsystem and the committed baselines.

Covers four fences:

* the committed ``BENCH_core.json`` / ``BENCH_sharded.json`` artifacts
  carry the schema (version, seed, move + wall-clock metrics) and the
  acceptance numbers (slab ≥ 1.5× on insert-heavy @ 4096, move logs
  bit-identical);
* the comparator fails (nonzero exit) on >25% move-count regressions and
  on slab/reference move-log divergence, while wall-clock drift only
  warns;
* quick regeneration in *this* process matches the committed move counts
  exactly;
* determinism: two **fresh processes** with the same seed produce
  byte-identical stripped baselines, and seeded randomized/adaptive
  labelers produce identical move logs (hash randomization between
  processes would expose any hidden set/dict-order dependence).
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.perf.__main__ as perf_cli
from repro.perf.baseline import (
    COMPATIBLE_SCHEMA_VERSIONS,
    DEFAULT_SEED,
    MOVE_METRICS,
    SCHEMA_VERSION,
    TRAJECTORY_LIMIT,
    WALL_CLOCK_METRICS,
    append_trajectory,
    baseline_filename,
    compare_baselines,
    generate_suite,
    is_wall_clock_metric,
    load_baseline,
    strip_wall_clock,
    trajectory_entry,
    write_baseline,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_DIR = REPO_ROOT / "src"


def _committed(suite: str) -> dict:
    path = REPO_ROOT / baseline_filename(suite)
    assert path.exists(), f"committed baseline {path} is missing"
    return load_baseline(path)


class TestCommittedBaselines:
    @pytest.mark.parametrize("suite", ["core", "sharded", "store", "latency"])
    def test_schema(self, suite):
        # Version-1 documents committed before the latency bump stay valid
        # (the bump was additive); anything outside the compatible set is
        # stale.
        document = _committed(suite)
        assert document["schema_version"] in COMPATIBLE_SCHEMA_VERSIONS
        assert document["suite"] == suite
        assert isinstance(document["seed"], int)
        assert document["quick"] is False
        assert document["scenarios"]
        for entry in document["scenarios"].values():
            assert entry["sizes"]
            for metrics in entry["sizes"].values():
                assert "operations" in metrics
                assert any(is_wall_clock_metric(metric) for metric in metrics)
                assert any(metric in metrics for metric in MOVE_METRICS)

    def test_core_acceptance_numbers(self):
        document = _committed("core")
        entry = document["scenarios"]["insert_heavy"]["sizes"]["4096"]
        # The slab backend must beat the seed physical layer by >= 1.5x on
        # the insert-heavy scenario at n=4096, with bit-identical moves.
        assert entry["speedup"] >= 1.5
        assert entry["moves_match"] is True
        assert entry["moves"] == entry["reference_moves"]
        for sizes in (
            entry
            for scenario in document["scenarios"].values()
            for entry in scenario["sizes"].values()
        ):
            if "moves_match" in sizes:
                assert sizes["moves_match"] is True

    def test_quick_regeneration_matches_committed_move_counts(self):
        document = _committed("core")
        fresh = generate_suite("core", quick=True, seed=document["seed"])
        comparison = compare_baselines(document, fresh)
        assert comparison.ok, comparison.failures
        # Determinism is stronger than the tolerance: zero drift warnings.
        drift = [w for w in comparison.warnings if "drifted" in w]
        assert not drift, drift

    def test_latency_acceptance_numbers(self):
        # The latency suite's acceptance row: under the cliff-chaser the
        # deamortized PMA must beat classical on p999 move cost while
        # classical wins the amortized average — at the quick and the full
        # size, with the tail_inversion flag recording it for the CI
        # comparator.
        document = _committed("latency")
        assert document["schema_version"] == SCHEMA_VERSION
        sizes = document["scenarios"]["cliff_chaser"]["sizes"]
        assert len(sizes) >= 2
        for entry in sizes.values():
            assert entry["tail_inversion"] is True
            assert entry["classical_amortized"] < entry["deamortized_amortized"]
            assert entry["deamortized_p999"] < entry["classical_p999"]
            assert entry["classical_latency_p999"] > 0.0

    def test_latency_quick_regeneration_matches_committed(self):
        document = _committed("latency")
        fresh = generate_suite("latency", quick=True, seed=document["seed"])
        comparison = compare_baselines(document, fresh)
        assert comparison.ok, comparison.failures
        drift = [w for w in comparison.warnings if "drifted" in w]
        assert not drift, drift


def _quick_core_document() -> dict:
    """A small synthetic baseline document (comparator unit-test fixture)."""
    return {
        "schema_version": SCHEMA_VERSION,
        "suite": "core",
        "seed": DEFAULT_SEED,
        "quick": True,
        "scenarios": {
            "insert_heavy": {
                "sizes": {
                    "512": {
                        "operations": 512,
                        "moves": 6000,
                        "reference_moves": 6000,
                        "moves_match": True,
                        "elapsed_seconds": 0.05,
                        "reference_elapsed_seconds": 0.07,
                        "speedup": 1.4,
                    }
                }
            }
        },
    }


class TestComparator:
    def test_identical_documents_pass(self):
        document = _quick_core_document()
        comparison = compare_baselines(document, copy.deepcopy(document))
        assert comparison.ok
        assert not comparison.warnings

    def test_move_regression_beyond_tolerance_fails(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        entry = fresh["scenarios"]["insert_heavy"]["sizes"]["512"]
        entry["moves"] = int(entry["moves"] * 1.3)  # +30% > 25% tolerance
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok
        assert any("regressed" in failure for failure in comparison.failures)

    def test_small_move_drift_warns_but_passes(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["insert_heavy"]["sizes"]["512"]["moves"] += 10
        comparison = compare_baselines(baseline, fresh)
        assert comparison.ok
        assert any("drifted" in warning for warning in comparison.warnings)

    def test_move_log_divergence_fails(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["insert_heavy"]["sizes"]["512"]["moves_match"] = False
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok
        assert any("diverged" in failure for failure in comparison.failures)

    def test_recovery_divergence_fails(self):
        # The store suite's correctness flag gets the same hard-fail
        # treatment as moves_match — a broken recovery must never ride
        # through CI as a mere drift warning.
        baseline = _quick_core_document()
        baseline["scenarios"]["insert_heavy"]["sizes"]["512"][
            "recovered_match"
        ] = True
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["insert_heavy"]["sizes"]["512"][
            "recovered_match"
        ] = False
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok
        assert any("recovered" in failure for failure in comparison.failures)

    def test_wall_clock_slowdown_only_warns(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        entry = fresh["scenarios"]["insert_heavy"]["sizes"]["512"]
        entry["elapsed_seconds"] = entry["elapsed_seconds"] * 10
        entry["speedup"] = 0.2
        comparison = compare_baselines(baseline, fresh)
        assert comparison.ok
        assert any("wall-clock" in warning for warning in comparison.warnings)

    def test_latency_metrics_only_warn(self):
        # Latency numbers come from a real clock: a noisy CI box tripling
        # them must never hard-fail the comparator, in any position of the
        # metric name (bare or per-algorithm prefixed).
        baseline = _quick_core_document()
        entry = baseline["scenarios"]["insert_heavy"]["sizes"]["512"]
        entry["latency_p999"] = 0.001
        entry["classical_latency_p50"] = 0.0005
        fresh = copy.deepcopy(baseline)
        fresh_entry = fresh["scenarios"]["insert_heavy"]["sizes"]["512"]
        fresh_entry["latency_p999"] = 0.1
        fresh_entry["classical_latency_p50"] = 0.05
        comparison = compare_baselines(baseline, fresh)
        assert comparison.ok
        assert sum(
            "wall-clock" in warning for warning in comparison.warnings
        ) == 2

    def test_tail_inversion_loss_fails(self):
        # The latency suite's paper-story flag is a correctness flag: the
        # deamortized structure losing its p999 edge is a regression, not
        # noise.
        baseline = _quick_core_document()
        baseline["scenarios"]["insert_heavy"]["sizes"]["512"][
            "tail_inversion"
        ] = True
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["insert_heavy"]["sizes"]["512"][
            "tail_inversion"
        ] = False
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok
        assert any("p999" in failure for failure in comparison.failures)

    def test_old_schema_version_still_compares(self):
        # The version bump was additive: a committed version-1 baseline
        # must keep validating against a current fresh run unchanged.
        baseline = _quick_core_document()
        baseline["schema_version"] = 1
        fresh = _quick_core_document()
        assert fresh["schema_version"] == SCHEMA_VERSION
        comparison = compare_baselines(baseline, fresh)
        assert comparison.ok, comparison.failures

    def test_schema_version_mismatch_fails(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        fresh["schema_version"] = SCHEMA_VERSION + 1
        assert fresh["schema_version"] not in COMPATIBLE_SCHEMA_VERSIONS
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok

    def test_seed_mismatch_fails(self):
        baseline = _quick_core_document()
        fresh = copy.deepcopy(baseline)
        fresh["seed"] = baseline["seed"] + 1
        comparison = compare_baselines(baseline, fresh)
        assert not comparison.ok

    def test_full_baseline_vs_quick_fresh_compares_intersection(self):
        baseline = _quick_core_document()
        baseline["quick"] = False
        baseline["scenarios"]["insert_heavy"]["sizes"]["4096"] = {
            "operations": 4096,
            "moves": 46687,
        }
        fresh = _quick_core_document()
        comparison = compare_baselines(baseline, fresh)
        assert comparison.ok
        compared_sizes = {row["n"] for row in comparison.rows}
        assert "4096" not in compared_sizes


class TestCli:
    def test_compare_exits_nonzero_on_regression(self, tmp_path, monkeypatch, capsys):
        baseline = _quick_core_document()
        write_baseline(tmp_path / baseline_filename("core"), baseline)
        fresh = copy.deepcopy(baseline)
        entry = fresh["scenarios"]["insert_heavy"]["sizes"]["512"]
        entry["moves"] = int(entry["moves"] * 1.5)
        monkeypatch.setattr(
            perf_cli, "generate_suite", lambda suite, quick, seed: fresh
        )
        code = perf_cli.main(
            ["compare", "--quick", "--suite", "core", "--baseline-dir", str(tmp_path)]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_compare_exits_zero_when_clean(self, tmp_path, monkeypatch, capsys):
        baseline = _quick_core_document()
        write_baseline(tmp_path / baseline_filename("core"), baseline)
        monkeypatch.setattr(
            perf_cli,
            "generate_suite",
            lambda suite, quick, seed: copy.deepcopy(baseline),
        )
        code = perf_cli.main(
            ["compare", "--quick", "--suite", "core", "--baseline-dir", str(tmp_path)]
        )
        assert code == 0
        assert "ok [core]" in capsys.readouterr().out

    def test_compare_missing_baseline_fails(self, tmp_path, capsys):
        code = perf_cli.main(
            ["compare", "--quick", "--suite", "core", "--baseline-dir", str(tmp_path)]
        )
        assert code == 1
        assert "no committed baseline" in capsys.readouterr().out

    def test_generate_writes_files(self, tmp_path, monkeypatch):
        document = _quick_core_document()
        monkeypatch.setattr(
            perf_cli, "generate_suite", lambda suite, quick, seed: document
        )
        code = perf_cli.main(
            ["generate", "--quick", "--suite", "core", "--out", str(tmp_path)]
        )
        assert code == 0
        written = load_baseline(tmp_path / baseline_filename("core"))
        assert written == document


class TestTrajectory:
    """Every run leaves a history record inside the baseline files."""

    def test_compare_appends_trajectory_to_baseline_file(
        self, tmp_path, monkeypatch
    ):
        baseline = _quick_core_document()
        path = write_baseline(tmp_path / baseline_filename("core"), baseline)
        monkeypatch.setattr(
            perf_cli,
            "generate_suite",
            lambda suite, quick, seed: copy.deepcopy(baseline),
        )
        for expected_length in (1, 2):
            code = perf_cli.main(
                ["compare", "--quick", "--suite", "core",
                 "--baseline-dir", str(tmp_path)]
            )
            assert code == 0
            history = load_baseline(path).get("trajectory", [])
            assert len(history) == expected_length
        entry = history[-1]
        assert entry["event"] == "compare"
        assert entry["ok"] is True
        assert entry["seed"] == DEFAULT_SEED
        assert entry["metrics"]["insert_heavy@512.moves"] == 6000
        # Only deterministic cost metrics are recorded, never wall clock.
        assert not any(
            metric.split(".")[-1] in WALL_CLOCK_METRICS
            for metric in entry["metrics"]
        )

    def test_failing_compare_still_records_the_outcome(
        self, tmp_path, monkeypatch
    ):
        baseline = _quick_core_document()
        path = write_baseline(tmp_path / baseline_filename("core"), baseline)
        fresh = copy.deepcopy(baseline)
        fresh["scenarios"]["insert_heavy"]["sizes"]["512"]["moves"] = 60000
        monkeypatch.setattr(
            perf_cli, "generate_suite", lambda suite, quick, seed: fresh
        )
        code = perf_cli.main(
            ["compare", "--quick", "--suite", "core",
             "--baseline-dir", str(tmp_path)]
        )
        assert code == 1
        entry = load_baseline(path)["trajectory"][-1]
        assert entry["ok"] is False
        assert entry["failures"] >= 1
        assert entry["metrics"]["insert_heavy@512.moves"] == 60000

    def test_no_trajectory_flag_opts_out(self, tmp_path, monkeypatch):
        baseline = _quick_core_document()
        path = write_baseline(tmp_path / baseline_filename("core"), baseline)
        monkeypatch.setattr(
            perf_cli,
            "generate_suite",
            lambda suite, quick, seed: copy.deepcopy(baseline),
        )
        perf_cli.main(
            ["compare", "--quick", "--suite", "core",
             "--baseline-dir", str(tmp_path), "--no-trajectory"]
        )
        assert "trajectory" not in load_baseline(path)

    def test_generate_carries_history_forward(self, tmp_path, monkeypatch):
        old = _quick_core_document()
        old["trajectory"] = [{"event": "compare", "seed": 1, "metrics": {}}]
        path = write_baseline(tmp_path / baseline_filename("core"), old)
        document = _quick_core_document()
        monkeypatch.setattr(
            perf_cli, "generate_suite", lambda suite, quick, seed: document
        )
        perf_cli.main(
            ["generate", "--quick", "--suite", "core", "--out", str(tmp_path)]
        )
        history = load_baseline(path)["trajectory"]
        assert len(history) == 2
        assert history[0]["event"] == "compare"   # preserved
        assert history[1]["event"] == "generate"  # this refresh

    def test_history_is_bounded(self):
        document = _quick_core_document()
        for index in range(TRAJECTORY_LIMIT + 25):
            append_trajectory(
                document, trajectory_entry(document, event="compare")
            )
        assert len(document["trajectory"]) == TRAJECTORY_LIMIT

    def test_committed_baselines_carry_history(self):
        for suite in ("core", "sharded", "store", "latency"):
            history = _committed(suite).get("trajectory", [])
            assert history, f"BENCH_{suite}.json has an empty trajectory"


def _run_in_fresh_process(script: str) -> str:
    """Run ``script`` in a fresh interpreter (its own hash randomization)."""
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        env={"PYTHONPATH": str(SRC_DIR), "PATH": "/usr/bin:/bin"},
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


class TestDeterminism:
    def test_bench_documents_identical_across_processes(self):
        script = (
            "import json\n"
            "from repro.perf.baseline import generate_suite, strip_wall_clock\n"
            "for suite in ('core', 'sharded', 'store', 'latency'):\n"
            "    doc = strip_wall_clock(generate_suite(suite, quick=True, seed=4242))\n"
            "    print(json.dumps(doc, sort_keys=True))\n"
        )
        first = _run_in_fresh_process(script)
        second = _run_in_fresh_process(script)
        assert first == second
        # Sanity: the output really is the four suite documents.
        lines = first.strip().splitlines()
        assert len(lines) == 4
        for line in lines:
            document = json.loads(line)
            for metrics in (
                m
                for entry in document["scenarios"].values()
                for m in entry["sizes"].values()
            ):
                assert not any(is_wall_clock_metric(m) for m in metrics)

    def test_randomized_and_adaptive_move_logs_identical_across_processes(self):
        # Seeded structures must yield identical move logs regardless of the
        # per-process hash seed; any hidden iteration-order dependence in
        # the rebalance paths would flip the digest between processes.
        script = (
            "import hashlib\n"
            "from fractions import Fraction\n"
            "from repro.algorithms import AdaptivePMA, RandomizedPMA\n"
            "from repro.core.operations import move_triples\n"
            "from repro.workloads.random_uniform import RandomWorkload\n"
            "for labeler in (RandomizedPMA(512, seed=77), AdaptivePMA(512)):\n"
            "    log = []\n"
            "    reference = []\n"
            "    for op in RandomWorkload(400, capacity=512,"
            " delete_fraction=0.25, seed=5):\n"
            "        if op.is_insert:\n"
            "            rank = op.rank\n"
            "            lower = reference[rank - 2] if rank >= 2 else None\n"
            "            upper = (reference[rank - 1]"
            " if rank - 1 < len(reference) else None)\n"
            "            if lower is None and upper is None: key = Fraction(0)\n"
            "            elif lower is None: key = upper - 1\n"
            "            elif upper is None: key = lower + 1\n"
            "            else: key = (lower + upper) / 2\n"
            "            result = labeler.insert(rank, key)\n"
            "            reference.insert(rank - 1, key)\n"
            "        else:\n"
            "            result = labeler.delete(op.rank)\n"
            "            reference.pop(op.rank - 1)\n"
            "        log.extend(move_triples(result.moves))\n"
            "    digest = hashlib.sha256(repr(log).encode()).hexdigest()\n"
            "    print(type(labeler).__name__, digest)\n"
        )
        first = _run_in_fresh_process(script)
        second = _run_in_fresh_process(script)
        assert first == second
        assert "RandomizedPMA" in first and "AdaptivePMA" in first
