"""Tests for the naive-interleaving strawman (the Deadweight Problem)."""

from __future__ import annotations

from repro.algorithms import AdaptivePMA, ClassicalPMA, NaiveLabeler
from repro.core import Embedding, InterleavedComposition

from tests.conftest import ReferenceDriver


def make_interleaved(capacity: int) -> InterleavedComposition:
    return InterleavedComposition(
        capacity,
        first_factory=lambda cap, _: AdaptivePMA(cap),
        second_factory=lambda cap, _: ClassicalPMA(cap),
    )


class TestCostModel:
    def test_insert_and_delete_account_costs(self):
        composition = make_interleaved(32)
        total = 0
        for index in range(20):
            total += composition.insert(index + 1, index)
        assert composition.size == 20
        assert composition.total_cost == total
        composition.delete(1)
        assert composition.size == 19

    def test_rank_validation(self):
        composition = make_interleaved(8)
        composition.insert(1, 0)
        try:
            composition.insert(5, 1)
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("out-of-range rank must be rejected")

    def test_deadweight_accumulates(self):
        """The strawman's defining failure: elements of one component are
        dragged around repeatedly by the other component's rebalances."""
        composition = make_interleaved(512)
        for index in range(400):
            composition.insert(1, 1000 - index)
        assert composition.total_deadweight > 0
        # Some unlucky element is carried around many times — unlike the
        # embedding, which bounds deadweight per element by a constant.
        assert composition.max_deadweight_per_element > 8

    def test_embedding_beats_strawman_on_deadweight(self):
        capacity = 384
        composition = make_interleaved(capacity)
        for index in range(capacity):
            composition.insert(1, capacity - index)

        embedding = Embedding(
            capacity,
            fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
            reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        )
        driver = ReferenceDriver(embedding, seed=1)
        for _ in range(capacity):
            driver.insert(1)

        per_element_embedding = max(
            embedding.physical.deadweight_by_element.values(), default=0
        )
        assert per_element_embedding <= 8
        assert composition.max_deadweight_per_element > per_element_embedding
