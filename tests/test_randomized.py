"""Tests for the randomized (history-oblivious) PMA."""

from __future__ import annotations

from repro.algorithms import ClassicalPMA, RandomizedPMA
from repro.analysis import run_workload
from repro.workloads import RandomWorkload, SequentialWorkload

from tests.conftest import ReferenceDriver


class TestDeterminismUnderSeed:
    def test_same_seed_same_behaviour(self):
        first = ReferenceDriver(RandomizedPMA(128, seed=42), seed=1)
        second = ReferenceDriver(RandomizedPMA(128, seed=42), seed=1)
        for _ in range(300):
            first.random_operation()
            second.random_operation()
        assert list(first.labeler.slots()) == list(second.labeler.slots())

    def test_different_seed_different_layout(self):
        first = ReferenceDriver(RandomizedPMA(128, seed=1), seed=1)
        second = ReferenceDriver(RandomizedPMA(128, seed=2), seed=1)
        for _ in range(300):
            first.random_operation()
            second.random_operation()
        # Same contents, (almost surely) different physical layout.
        assert first.labeler.elements() == second.labeler.elements()
        assert list(first.labeler.slots()) != list(second.labeler.slots())


class TestWindowRandomization:
    def test_window_bounds_always_contain_slot(self):
        labeler = RandomizedPMA(512, seed=9)
        for level in range(labeler.height + 1):
            for slot in (0, 17, 200, labeler.num_slots - 1):
                lo, hi = labeler._window_bounds(slot, level)
                assert 0 <= lo <= slot < hi <= labeler.num_slots

    def test_cost_competitive_with_classical(self):
        n = 1024
        randomized = run_workload(RandomizedPMA(n, seed=5), RandomWorkload(n, n, seed=5))
        classical = run_workload(ClassicalPMA(n), RandomWorkload(n, n, seed=5))
        assert randomized.amortized_cost < 3 * classical.amortized_cost + 5

    def test_sequential_inserts_supported(self):
        n = 512
        run = run_workload(RandomizedPMA(n, seed=4), SequentialWorkload(n), validate_every=128)
        assert run.tracker.operations == n

    def test_consistency_under_churn(self):
        driver = ReferenceDriver(RandomizedPMA(96, seed=3), seed=6)
        for _ in range(400):
            driver.random_operation(delete_probability=0.4)
        driver.check()
