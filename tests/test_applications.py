"""Tests for the application layers (ordered map, order maintenance)."""

from __future__ import annotations

import random

import pytest

from repro.algorithms import ClassicalPMA
from repro.applications import OrderMaintenance, PackedMemoryMap
from repro.core import ShardedLabeler


def classical_factory(capacity: int) -> ClassicalPMA:
    return ClassicalPMA(capacity)


class TestPackedMemoryMap:
    def test_set_get_delete(self):
        index = PackedMemoryMap(64, classical_factory)
        index[10] = "ten"
        index[5] = "five"
        index[20] = "twenty"
        assert len(index) == 3
        assert index[5] == "five"
        assert index.get(99) is None
        del index[10]
        assert 10 not in index
        assert index.keys() == [5, 20]
        index.check()

    def test_overwrite_does_not_duplicate(self):
        index = PackedMemoryMap(16, classical_factory)
        index[1] = "a"
        index[1] = "b"
        assert len(index) == 1
        assert index[1] == "b"

    def test_missing_key_errors(self):
        index = PackedMemoryMap(8, classical_factory)
        with pytest.raises(KeyError):
            _ = index[3]
        with pytest.raises(KeyError):
            del index[3]

    def test_ordered_queries(self):
        index = PackedMemoryMap(128, classical_factory)
        for key in range(0, 100, 2):
            index[key] = key * 10
        assert index.predecessor(51) == 50
        assert index.successor(50) == 52
        assert index.predecessor(0) is None
        assert index.successor(98) is None
        assert list(index.range(10, 16)) == [(10, 100), (12, 120), (14, 140), (16, 160)]

    def test_labels_monotone_and_costs_tracked(self):
        index = PackedMemoryMap(256, classical_factory)
        rng = random.Random(5)
        keys = rng.sample(range(10_000), 200)
        for key in keys:
            index[key] = key
        labels = [index.label_of(key) for key in sorted(keys)]
        assert labels == sorted(labels)
        assert index.costs.operations == 200
        assert index.costs.amortized >= 1.0
        index.check()

    def test_default_layered_backend(self):
        index = PackedMemoryMap(64)
        for key in range(40):
            index[key] = key
        assert index.keys() == list(range(40))
        index.check()


class TestUnboundedPackedMemoryMap:
    """``capacity=None`` puts the map on the sharding engine — no ceiling."""

    def test_grows_past_any_single_shard(self):
        index = PackedMemoryMap(labeler_factory=classical_factory, shard_capacity=32)
        assert isinstance(index.labeler, ShardedLabeler)
        total = 10 * 32
        for key in range(total):
            index[key] = key * 2
        assert len(index) == total
        assert index.labeler.splits >= 3
        assert index.keys() == list(range(total))
        assert index[191] == 382
        index.check()

    def test_update_many_batches_new_keys(self):
        index = PackedMemoryMap(labeler_factory=classical_factory, shard_capacity=32)
        inserted = index.update_many((key, key) for key in range(0, 400, 2))
        assert inserted == 200
        # Mixed batch: 100 overwrites (multiples of 4) + 100 fresh odd keys.
        inserted = index.update_many(
            [(key, -key) for key in range(0, 200, 4)]
            + [(key, -key) for key in range(1, 200, 2)]
        )
        assert inserted == 100
        assert len(index) == 300
        assert index[4] == -4 and index[3] == -3 and index[6] == 6
        assert index.keys() == sorted(index.keys())
        assert index.costs.batches >= 2
        index.check()

    def test_update_many_is_all_or_nothing(self):
        # A rejected batch (bounded map over capacity) must leave the map
        # untouched — overwrites of existing keys included.
        from repro.core.exceptions import BatchError

        index = PackedMemoryMap(100, classical_factory)
        for key in range(90):
            index[key] = key
        with pytest.raises(BatchError):
            index.update_many(
                [(key, -key) for key in range(50)]
                + [(key, key) for key in range(100, 120)]
            )
        assert len(index) == 90
        assert index[10] == 10
        index.check()

    def test_unbounded_deletion_merges_shards(self):
        index = PackedMemoryMap(labeler_factory=classical_factory, shard_capacity=32)
        for key in range(300):
            index[key] = key
        for key in range(10, 300):
            del index[key]
        assert len(index) == 10
        assert index.labeler.merges >= 1
        assert index.keys() == list(range(10))
        index.check()

    def test_range_scan_spans_shards(self):
        index = PackedMemoryMap(labeler_factory=classical_factory, shard_capacity=32)
        index.update_many((key, str(key)) for key in range(250))
        window = list(index.range(90, 110))
        assert window == [(key, str(key)) for key in range(90, 111)]
        assert index.predecessor(90) == 89
        assert index.successor(110) == 111


class TestOrderMaintenance:
    def test_insert_relations(self):
        order = OrderMaintenance(32, classical_factory)
        order.insert_first("b")
        order.insert_before("b", "a")
        order.insert_after("b", "d")
        order.insert_after("b", "c")
        order.insert_last("e")
        assert list(order) == ["a", "b", "c", "d", "e"]
        order.check()

    def test_precedes_matches_order(self):
        order = OrderMaintenance(64, classical_factory)
        order.insert_first("x")
        previous = "x"
        for index in range(30):
            item = f"item-{index}"
            order.insert_after(previous, item)
            previous = item
        assert order.precedes("x", "item-0")
        assert order.precedes("item-3", "item-17")
        assert not order.precedes("item-17", "item-3")

    def test_delete_and_membership(self):
        order = OrderMaintenance(16, classical_factory)
        order.insert_first("a")
        order.insert_after("a", "b")
        order.delete("a")
        assert "a" not in order
        assert list(order) == ["b"]
        with pytest.raises(KeyError):
            order.label_of("a")
        with pytest.raises(KeyError):
            order.insert_after("a", "c")

    def test_duplicate_rejected(self):
        order = OrderMaintenance(8, classical_factory)
        order.insert_first("a")
        with pytest.raises(ValueError):
            order.insert_last("a")

    def test_random_interleaving_stays_consistent(self):
        order = OrderMaintenance(128, classical_factory)
        rng = random.Random(11)
        items = [f"v{i}" for i in range(100)]
        order.insert_first(items[0])
        present = [items[0]]
        for item in items[1:]:
            anchor = rng.choice(present)
            if rng.random() < 0.5:
                order.insert_after(anchor, item)
            else:
                order.insert_before(anchor, item)
            present.append(item)
        order.check()
        sequence = list(order)
        for _ in range(50):
            first, second = rng.sample(sequence, 2)
            expected = sequence.index(first) < sequence.index(second)
            assert order.precedes(first, second) == expected

    def test_default_layered_backend(self):
        order = OrderMaintenance(32)
        order.insert_first(0)
        for index in range(1, 20):
            order.insert_after(index - 1, index)
        assert list(order) == list(range(20))
        order.check()
