"""Tests for the workload generators."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.workloads import (
    BulkLoadWorkload,
    CompactionStormWorkload,
    DriftingZipfWorkload,
    FlashCrowdWorkload,
    HammerWorkload,
    PredictedWorkload,
    RandomWorkload,
    RebalanceCliffWorkload,
    SequentialWorkload,
    SlidingWindowWorkload,
    SortedRandomInterleaveWorkload,
    ZipfianWorkload,
    synthesize_key,
)


def replay_sizes(workload) -> int:
    """Replay a workload against a counter and validate rank bounds."""
    size = 0
    count = 0
    for operation in workload:
        if operation.is_insert:
            assert 1 <= operation.rank <= size + 1
            size += 1
        else:
            assert 1 <= operation.rank <= size
            size -= 1
        count += 1
    return count


ALL_WORKLOADS = [
    RandomWorkload(300, 200, delete_fraction=0.3, seed=1),
    SequentialWorkload(200),
    SequentialWorkload(200, ascending=False),
    HammerWorkload(200, seed=2),
    BulkLoadWorkload(200, batch_size=16, seed=3),
    ZipfianWorkload(200, skew=1.3, seed=4),
    ZipfianWorkload(200, skew=1.3, hotspot_position=0.5, seed=4),
    SlidingWindowWorkload(300, window=50),
    PredictedWorkload(200, eta=8, seed=5),
    RebalanceCliffWorkload(300, seed=6),
    DriftingZipfWorkload(300, seed=7),
    FlashCrowdWorkload(300, burst_length=16, burst_every=64, seed=8),
    CompactionStormWorkload(400, storm_length=32, seed=9),
    SortedRandomInterleaveWorkload(300, run_length=32, seed=10),
]


@pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
class TestAllWorkloads:
    def test_rank_bounds_respected(self, workload):
        assert replay_sizes(workload) == len(workload)

    def test_replayable_and_deterministic(self, workload):
        first = [(op.kind, op.rank) for op in workload]
        second = [(op.kind, op.rank) for op in workload]
        assert first == second

    def test_describe(self, workload):
        info = workload.describe()
        assert info["operations"] == len(workload)
        assert info["capacity"] >= 1


class TestSpecificShapes:
    def test_sequential_is_append_only(self):
        ranks = [op.rank for op in SequentialWorkload(10)]
        assert ranks == list(range(1, 11))

    def test_descending_is_prepend_only(self):
        ranks = [op.rank for op in SequentialWorkload(10, ascending=False)]
        assert ranks == [1] * 10

    def test_hammer_fixes_one_rank_after_warmup(self):
        workload = HammerWorkload(100, warmup_fraction=0.2, seed=1)
        ranks = [op.rank for op in workload]
        hammer_ranks = set(ranks[20:])
        assert len(hammer_ranks) == 1

    def test_sliding_window_bounds_size(self):
        sizes = []
        size = 0
        for operation in SlidingWindowWorkload(200, window=20):
            size += 1 if operation.is_insert else -1
            sizes.append(size)
        assert max(sizes) <= 20

    def test_random_workload_respects_capacity(self):
        size = 0
        for operation in RandomWorkload(500, 64, seed=9):
            size += 1 if operation.is_insert else -1
            assert size <= 64

    def test_predicted_workload_carries_keys_and_predictor(self):
        workload = PredictedWorkload(64, eta=4, seed=1)
        keys = [op.key for op in workload]
        assert sorted(keys) == workload.keys
        assert workload.max_prediction_error() <= 4

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RandomWorkload(10, 10, delete_fraction=1.5)
        with pytest.raises(ValueError):
            HammerWorkload(10, warmup_fraction=1.5)
        with pytest.raises(ValueError):
            SlidingWindowWorkload(10, window=0)
        with pytest.raises(ValueError):
            BulkLoadWorkload(10, batch_size=0)


class TestZipfianHotspot:
    """The one-sided-hotspot bugfix: two-sided offsets, seed-gated."""

    def test_default_hotspot_stream_bit_identical_to_legacy(self):
        # With hotspot_position=0.0 the committed BENCH baselines' draw
        # stream must survive the two-sided fix: exactly one zipf draw per
        # operation and no direction draw.
        import random

        from repro.workloads.mixed import zipf_index

        workload = ZipfianWorkload(128, skew=1.2, seed=11)
        ranks = [op.rank for op in workload]
        rng = random.Random(11)
        expected = []
        size = 0
        for _ in range(128):
            universe = size + 1
            offset = zipf_index(rng, universe, 1.2) - 1
            expected.append(min(universe, max(1, offset + 1)))
            size += 1
        assert ranks == expected

    def test_mid_hotspot_mass_on_both_sides(self):
        # A 0.5 hotspot must spread insertions to both sides of the
        # anchor; the one-sided sampler put everything at or right of it.
        workload = ZipfianWorkload(400, skew=1.2, hotspot_position=0.5, seed=12)
        below = above = 0
        size = 0
        for operation in workload:
            anchor = int(0.5 * size) + 1
            if size >= 50:
                if operation.rank < anchor:
                    below += 1
                elif operation.rank > anchor:
                    above += 1
            size += 1
        assert below > 20
        assert above > 20

    def test_end_hotspot_no_longer_degenerates_into_a_clamp_pile(self):
        # hotspot_position=1.0 used to clamp almost every draw to the max
        # rank (an accidental append-hammer); two-sided offsets spread it.
        workload = ZipfianWorkload(300, skew=1.2, hotspot_position=1.0, seed=13)
        size = 0
        clamped = 0
        for operation in workload:
            if size >= 50 and operation.rank == size + 1:
                clamped += 1
            size += 1
        assert clamped < 200


class TestSynthesizeKey:
    def test_midpoint_between_neighbours(self):
        reference = [Fraction(0), Fraction(10)]
        key = synthesize_key(reference, 2)
        assert Fraction(0) < key < Fraction(10)

    def test_ends(self):
        reference = [Fraction(5)]
        assert synthesize_key(reference, 1) < Fraction(5)
        assert synthesize_key(reference, 2) > Fraction(5)
        assert synthesize_key([], 1) == Fraction(0)

    def test_repeated_splitting_never_collides(self):
        reference = [Fraction(0), Fraction(1)]
        seen = set(reference)
        for _ in range(200):
            key = synthesize_key(reference, 2)
            assert key not in seen
            seen.add(key)
            reference.insert(1, key)
