"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.algorithms import AdaptivePMA, ClassicalPMA, NaiveLabeler
from repro.core import Embedding, ShardedLabeler
from repro.core.layered import make_corollary11_labeler
from repro.core.validation import check_labeler
from repro.store.factories import EXACT_SNAPSHOT_ALGORITHMS, SHARD_FACTORIES

#: name -> factory(capacity) for every standalone algorithm — one registry
#: with the durable store (same names, same seeds), so the crash-recovery
#: differential and the algorithm suites always cover the same universe.
ALGORITHM_FACTORIES = {
    name: SHARD_FACTORIES[name] for name in EXACT_SNAPSHOT_ALGORITHMS
}

#: name -> factory(capacity) for the composite structures of the paper.
COMPOSITE_FACTORIES = {
    "embedding(adaptive<|classical)": lambda capacity: Embedding(
        capacity,
        fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
    ),
    "embedding(naive<|classical)": lambda capacity: Embedding(
        capacity,
        fast_factory=lambda cap, slots: NaiveLabeler(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        reliable_expected_cost=32,
    ),
    "corollary11": lambda capacity: make_corollary11_labeler(capacity, seed=7),
    # The sharding engine is unbounded; ``capacity`` only sizes its shards
    # so that runs at the suite's usual sizes cross shard boundaries.
    "sharded(classical)": lambda capacity: ShardedLabeler(
        lambda cap: ClassicalPMA(cap), shard_capacity=max(16, capacity // 8)
    ),
}


@pytest.fixture(params=sorted(ALGORITHM_FACTORIES))
def algorithm_name(request):
    return request.param


@pytest.fixture
def algorithm_factory(algorithm_name):
    return ALGORITHM_FACTORIES[algorithm_name]


class ReferenceDriver:
    """Drives a labeler and a plain sorted-list reference model in lockstep.

    Keys are exact rationals chosen between the rank neighbours, so the
    reference model is a ground truth for both contents and order regardless
    of how adversarial the rank sequence is.
    """

    def __init__(self, labeler, seed: int = 0):
        self.labeler = labeler
        self.reference: list[Fraction] = []
        self.rng = random.Random(seed)
        self.costs: list[int] = []

    def key_for(self, rank: int) -> Fraction:
        lower = self.reference[rank - 2] if rank >= 2 else None
        upper = self.reference[rank - 1] if rank - 1 < len(self.reference) else None
        if lower is None and upper is None:
            return Fraction(0)
        if lower is None:
            return upper - 1
        if upper is None:
            return lower + 1
        return (lower + upper) / 2

    def insert(self, rank: int) -> int:
        key = self.key_for(rank)
        result = self.labeler.insert(rank, key)
        self.reference.insert(rank - 1, key)
        self.costs.append(result.cost)
        return result.cost

    def delete(self, rank: int) -> int:
        result = self.labeler.delete(rank)
        self.reference.pop(rank - 1)
        self.costs.append(result.cost)
        return result.cost

    def random_operation(self, delete_probability: float = 0.3) -> int:
        size = len(self.reference)
        full = size >= self.labeler.capacity
        if size and (full or self.rng.random() < delete_probability):
            return self.delete(self.rng.randint(1, size))
        return self.insert(self.rng.randint(1, size + 1))

    def check(self) -> None:
        check_labeler(self.labeler, expected=self.reference)
        assert list(self.labeler.elements()) == self.reference


@pytest.fixture
def reference_driver_factory():
    return ReferenceDriver
