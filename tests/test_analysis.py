"""Tests for the measurement layer (runner, curve fitting, reports)."""

from __future__ import annotations

import math

import pytest

from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.analysis import (
    estimate_log_exponent,
    format_table,
    growth_ratios,
    run_workload,
)
from repro.analysis.curves import normalized_by_log_power
from repro.workloads import RandomWorkload, SequentialWorkload


class TestRunner:
    def test_run_workload_records_every_operation(self):
        result = run_workload(ClassicalPMA(128), RandomWorkload(128, 128, seed=1))
        assert result.tracker.operations == 128
        assert result.total_cost == result.tracker.total_cost
        assert result.workload_name == "uniform-random"
        assert len(result.final_keys) == len(result.labeler)

    def test_validation_hook_runs(self):
        result = run_workload(
            ClassicalPMA(64), RandomWorkload(96, 64, delete_fraction=0.3, seed=2),
            validate_every=16,
        )
        assert result.tracker.operations == 96

    def test_stop_after_truncates(self):
        result = run_workload(NaiveLabeler(64), SequentialWorkload(64), stop_after=10)
        assert result.tracker.operations == 10

    def test_keys_from_workload_are_used(self):
        from repro.workloads import PredictedWorkload

        workload = PredictedWorkload(32, eta=0, seed=3)
        result = run_workload(ClassicalPMA(32), workload)
        assert sorted(result.final_keys) == workload.keys

    def test_sharded_summary_stats_are_run_scoped(self):
        from repro.core import ShardedLabeler

        labeler = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=16)
        first = run_workload(labeler, SequentialWorkload(200))
        assert first.summary()["splits"] >= 3
        assert first.summary()["restructure_moves"] > 0
        assert first.summary()["shards"] == labeler.shard_count
        # A reused labeler must not leak the first run's splits/moves into
        # the second run's summary.
        second = run_workload(labeler, SequentialWorkload(1))
        summary = second.summary()
        assert "splits" not in summary and "restructure_moves" not in summary
        assert summary["shards"] == labeler.shard_count


class TestCurves:
    def test_exponent_of_synthetic_log_squared(self):
        sizes = [2**k for k in range(8, 16)]
        costs = [math.log2(n) ** 2 for n in sizes]
        assert estimate_log_exponent(sizes, costs) == pytest.approx(2.0, abs=0.05)

    def test_exponent_of_synthetic_log(self):
        sizes = [2**k for k in range(8, 16)]
        costs = [5 * math.log2(n) for n in sizes]
        assert estimate_log_exponent(sizes, costs) == pytest.approx(1.0, abs=0.05)

    def test_exponent_rejects_bad_input(self):
        with pytest.raises(ValueError):
            estimate_log_exponent([16], [3.0])
        with pytest.raises(ValueError):
            estimate_log_exponent([2, 4], [1.0, 2.0])

    def test_growth_ratios(self):
        assert growth_ratios([1, 2, 3], [2.0, 4.0, 8.0]) == [2.0, 2.0]

    def test_normalized_by_log_power_constant_for_matching_power(self):
        sizes = [2**k for k in range(8, 14)]
        costs = [3 * math.log2(n) ** 2 for n in sizes]
        normalized = normalized_by_log_power(sizes, costs, 2.0)
        assert max(normalized) - min(normalized) < 1e-9


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            {"algorithm": "classical", "amortized": 4.5, "worst": 300},
            {"algorithm": "layered", "amortized": 5.25, "worst": 80},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "algorithm" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_selected_columns(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
