"""Observability subsystem: registry, histograms, spans, wire exposure.

Four layers of coverage:

* **Instrument semantics** — counters, gauges, exponential histograms
  (bucket edges, nearest-rank percentiles, plain-dict snapshots), the
  null registry, and the Prometheus exposition renderer.
* **Concurrency** — multi-threaded hammering loses no increments, and a
  snapshot taken *during* a write storm is internally consistent (each
  histogram's cumulative buckets are monotone and end at its count).
* **Property-based oracle** — a hypothesis test checks the histogram's
  percentile estimate and cumulative bucket counts against a sorted-list
  oracle for arbitrary samples.
* **Wire exposure** — a live server answers ``METRICS`` / enriched
  ``STATS`` with every expected metric family, and accounts
  connection-level errors per family (bad command, not-found, oversized
  frame).
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    SpanTracer,
    render_prometheus,
)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
class TestInstruments:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("a.b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10.0)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_histogram_bucket_edges_are_le_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", start=1.0, factor=2.0, count=3)
        assert hist.bounds == (1.0, 2.0, 4.0)
        # A value exactly on a bound lands in that bound's bucket (le
        # semantics); just above it spills into the next.
        hist.observe(1.0)
        hist.observe(1.0000001)
        snapshot = hist.snapshot()
        assert snapshot["buckets"][0] == [1.0, 1]
        assert snapshot["buckets"][1] == [2.0, 2]
        assert snapshot["buckets"][-1] == ["+Inf", 2]

    def test_histogram_overflow_percentile_is_observed_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", start=1.0, factor=2.0, count=2)
        hist.observe(100.0)
        assert hist.percentile(0.99) == 100.0
        assert hist.snapshot()["max"] == 100.0

    def test_histogram_empty_percentile_is_zero(self):
        registry = MetricsRegistry()
        assert registry.histogram("h").percentile(0.5) == 0.0

    def test_histogram_rejects_bad_geometry_and_quantile(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("bad.start", start=0.0)
        with pytest.raises(ValueError):
            registry.histogram("bad.factor", factor=1.0)
        with pytest.raises(ValueError):
            registry.histogram("ok").percentile(0.0)

    def test_snapshot_is_plain_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.5)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["counters"] == {"a": 2, "b": 1}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_null_registry_is_inert_and_shared(self):
        assert NULL_REGISTRY.enabled is False
        instrument = NULL_REGISTRY.counter("anything")
        assert instrument is NULL_REGISTRY.histogram("other")
        instrument.inc()
        instrument.observe(1.0)
        assert instrument.value == 0
        assert NULL_REGISTRY.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_default_latency_buckets_span_microseconds_to_minutes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency")
        start, factor, count = DEFAULT_LATENCY_BUCKETS
        assert hist.bounds[0] == start
        assert len(hist.bounds) == count
        assert hist.bounds[-1] == start * factor ** (count - 1)
        assert hist.bounds[-1] > 600  # covers ten-minute outliers


class TestExposition:
    def test_render_prometheus_families(self):
        registry = MetricsRegistry()
        registry.counter("wal.frames_appended").inc(3)
        registry.gauge("pool.queue_depth").set(2)
        hist = registry.histogram("h", start=1.0, factor=2.0, count=2)
        hist.observe(1.5)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_wal_frames_appended_total counter" in text
        assert "repro_wal_frames_appended_total 3" in text
        assert "# TYPE repro_pool_queue_depth gauge" in text
        assert 'repro_h_bucket{le="2.0"} 1' in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_count 1" in text

    def test_render_sanitizes_names(self):
        registry = MetricsRegistry()
        registry.counter("service.latency.put-many").inc()
        text = render_prometheus(registry.snapshot())
        assert "repro_service_latency_put_many_total 1" in text


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------
class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpans:
    def test_nesting_builds_a_tree(self):
        clock = _FakeClock()
        tracer = SpanTracer(slow_threshold_seconds=0.01, clock=clock)
        with tracer.span("service.put"):
            clock.now = 0.010
            with tracer.span("store.commit"):
                clock.now = 0.020
                with tracer.span("wal.append"):
                    clock.now = 0.090
            clock.now = 0.100
        (entry,) = tracer.slow_ops()
        root = entry["root"]
        assert root["name"] == "service.put"
        assert root["duration_seconds"] == pytest.approx(0.100)
        (commit,) = root["children"]
        assert commit["name"] == "store.commit"
        assert commit["offset_seconds"] == pytest.approx(0.010)
        (append,) = commit["children"]
        assert append["name"] == "wal.append"
        assert append["duration_seconds"] == pytest.approx(0.070)

    def test_fast_roots_are_not_retained(self):
        clock = _FakeClock()
        tracer = SpanTracer(slow_threshold_seconds=0.05, clock=clock)
        with tracer.span("fast"):
            clock.now += 0.001
        assert tracer.slow_ops() == []

    def test_ring_is_bounded_and_clearable(self):
        clock = _FakeClock()
        tracer = SpanTracer(slow_threshold_seconds=0.0, capacity=2, clock=clock)
        for index in range(5):
            with tracer.span(f"op{index}"):
                clock.now += 1.0
        names = [entry["root"]["name"] for entry in tracer.slow_ops()]
        assert names == ["op3", "op4"]
        tracer.clear()
        assert tracer.slow_ops() == []

    def test_null_tracer_span_is_reusable_noop(self):
        span = NULL_TRACER.span("x")
        with span:
            with span:
                pass
        assert NULL_TRACER.slow_ops() == []

    def test_global_enable_disable_roundtrip(self):
        assert obs.get_registry() is NULL_REGISTRY
        try:
            registry = obs.enable(slow_threshold_seconds=0.123)
            assert registry.enabled
            assert obs.enable() is registry  # idempotent
            assert obs.get_tracer().slow_threshold_seconds == 0.123
            with obs.span("anything"):
                pass
        finally:
            removed_registry, _ = obs.disable()
        assert removed_registry is registry
        assert obs.get_registry() is NULL_REGISTRY
        assert obs.get_tracer() is NULL_TRACER

    def test_resolve_prefers_injection(self):
        registry = MetricsRegistry()
        assert obs.resolve(registry) is registry
        assert obs.resolve(None) is obs.get_registry()


# ---------------------------------------------------------------------------
# Concurrency (satellite: no lost increments, consistent snapshots)
# ---------------------------------------------------------------------------
class TestConcurrency:
    THREADS = 8
    PER_THREAD = 2500

    def _hammer(self, work) -> None:
        barrier = threading.Barrier(self.THREADS)

        def run() -> None:
            barrier.wait()
            work()

        threads = [
            threading.Thread(target=run) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_hammer_loses_no_increments(self):
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("hammered")

        def work() -> None:
            for _ in range(self.PER_THREAD):
                counter.inc()

        self._hammer(work)
        assert counter.value == self.THREADS * self.PER_THREAD

    def test_histogram_hammer_loses_no_observations(self):
        registry = MetricsRegistry(stripes=4)
        hist = registry.histogram("hammered", start=1.0, factor=2.0, count=8)

        def work() -> None:
            for index in range(self.PER_THREAD):
                hist.observe(float(1 + index % 300))

        self._hammer(work)
        total = self.THREADS * self.PER_THREAD
        snapshot = hist.snapshot()
        assert snapshot["count"] == total
        assert snapshot["buckets"][-1] == ["+Inf", total]

    def test_snapshot_under_write_storm_is_consistent(self):
        registry = MetricsRegistry(stripes=4)
        counter = registry.counter("storm")
        hist = registry.histogram("storm.h", start=1.0, factor=2.0, count=6)
        stop = threading.Event()

        def write() -> None:
            while not stop.is_set():
                counter.inc()
                hist.observe(3.0)

        writers = [threading.Thread(target=write) for _ in range(4)]
        for writer in writers:
            writer.start()
        try:
            deadline = time.monotonic() + 1.0
            last_count = 0
            while time.monotonic() < deadline:
                snapshot = registry.snapshot()
                h = snapshot["histograms"]["storm.h"]
                cumulative = [count for _, count in h["buckets"][:-1]]
                # Cumulative buckets are monotone and never exceed the
                # histogram's own count; the count never goes backwards.
                assert cumulative == sorted(cumulative)
                assert all(c <= h["count"] for c in cumulative)
                assert h["buckets"][-1][1] == h["count"]
                assert snapshot["counters"]["storm"] >= last_count
                last_count = snapshot["counters"]["storm"]
        finally:
            stop.set()
            for writer in writers:
                writer.join()
        assert counter.value == registry.snapshot()["counters"]["storm"]


# ---------------------------------------------------------------------------
# Hypothesis oracle: buckets and percentiles vs a sorted list
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    samples=st.lists(
        st.floats(min_value=1e-9, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=80,
    ),
    q=st.floats(min_value=0.001, max_value=1.0),
)
def test_histogram_matches_sorted_list_oracle(samples, q):
    registry = MetricsRegistry()
    hist = registry.histogram("oracle", start=1e-6, factor=4.0, count=16)
    for value in samples:
        hist.observe(value)

    ordered = sorted(samples)
    snapshot = hist.snapshot()

    # Cumulative count at every bound equals the oracle count of samples
    # at or below that bound.
    for bound, cumulative in snapshot["buckets"][:-1]:
        assert cumulative == sum(1 for v in ordered if v <= bound)
    assert snapshot["buckets"][-1][1] == len(ordered)
    assert snapshot["max"] == ordered[-1]

    # The percentile estimate is the upper bound of the bucket holding
    # the nearest-rank sample (or the observed max past the last bound).
    rank_value = ordered[max(1, math.ceil(q * len(ordered))) - 1]
    index = bisect_left(hist.bounds, rank_value)
    expected = (
        hist.bounds[index] if index < len(hist.bounds) else snapshot["max"]
    )
    estimate = hist.percentile(q)
    assert estimate == expected
    assert rank_value <= estimate


# ---------------------------------------------------------------------------
# Wire exposure: METRICS / enriched STATS / error families
# ---------------------------------------------------------------------------
@pytest.fixture()
def live_server(tmp_path):
    from repro.store.server import ServerThread
    from repro.store.service import StoreService
    from repro.store.store import DurableStore

    registry = MetricsRegistry()
    store = DurableStore(
        tmp_path / "store",
        algorithm="classical",
        shard_capacity=32,
        sync_policy="never",
        registry=registry,
    )
    service = StoreService(store, stripes=4, track_latency=True)
    with ServerThread(service) as server:
        yield server, registry
    service.close()


class TestWireExposure:
    def _client(self, server):
        from repro.store.client import StoreClient

        return StoreClient(*server.address)

    def test_metrics_round_trip(self, live_server):
        server, registry = live_server
        with self._client(server) as client:
            for index in range(64):
                client.put(index, index * 2)
            client.get(1)
            metrics = client.metrics()
        assert metrics["enabled"] is True
        counters = metrics["metrics"]["counters"]
        assert counters["wal.frames_appended"] >= 64
        assert counters["server.requests"] >= 65
        histograms = metrics["metrics"]["histograms"]
        assert histograms["service.latency.put"]["count"] >= 64
        assert histograms["service.lock_wait_seconds"]["count"] >= 64
        assert metrics["metrics"]["gauges"]["sharded.shard_count"] >= 1
        assert "repro_wal_frames_appended_total" in metrics["exposition"]
        # The wire snapshot matches a direct read of the same registry.
        assert counters == registry.snapshot()["counters"]

    def test_stats_reports_compactor_replication_and_shards(self, live_server):
        server, _ = live_server
        with self._client(server) as client:
            client.put("k", "v")
            stats = client.stats()
        assert stats["compactor_alive"] is False
        assert stats["last_compactor_error"] is None
        assert stats["replica_count"] == 0
        assert stats["replica_acks"] == []
        assert stats["replication_floor"] is None
        assert stats["shard_statistics"]["shards"] >= 1
        assert "latency_p999" in stats["latency"]
        # Aliased spellings stay available for committed baselines.
        assert (
            stats["latency"]["latency_max"]
            == stats["latency"]["latency_event_max"]
        )

    def test_error_families_are_counted(self, live_server):
        import socket
        import struct

        from repro.store.client import StoreClientError
        from repro.store.protocol import MAX_MESSAGE_BYTES

        server, _ = live_server
        with self._client(server) as client:
            with pytest.raises(KeyError):
                client.delete("missing")
            with pytest.raises(StoreClientError):
                client._call("NOPE")
        with socket.create_connection(server.address, timeout=5.0) as sock:
            sock.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
            sock.settimeout(5.0)
            assert sock.recv(1) == b""
        with self._client(server) as client:
            stats = client.stats()
            counters = client.metrics()["metrics"]["counters"]
        for family in ("not_found", "bad_command", "oversized_frame"):
            assert stats["error_counts"][family] >= 1
            assert counters[f"server.errors.{family}"] >= 1

    def test_read_only_rejection_is_counted(self, live_server):
        from repro.store.client import ReadOnlyError

        server, _ = live_server
        server.read_only = True
        try:
            with self._client(server) as client:
                with pytest.raises(ReadOnlyError):
                    client.put("k", "v")
                stats = client.stats()
        finally:
            server.read_only = False
        assert stats["error_counts"]["read_only"] >= 1


class TestStatsCli:
    def test_stats_command_renders_live_server(self, tmp_path, capsys):
        from repro.store import __main__ as cli
        from repro.store.server import ServerThread
        from repro.store.service import StoreService
        from repro.store.store import DurableStore

        store = DurableStore(
            tmp_path / "store",
            algorithm="classical",
            shard_capacity=32,
            sync_policy="never",
            registry=MetricsRegistry(),
        )
        service = StoreService(store, stripes=4)
        with ServerThread(service) as server:
            host, port = server.address
            code = cli.main(
                ["stats", "--host", host, "--port", str(port)]
            )
        service.close()
        out = capsys.readouterr().out
        assert code == 0
        assert "durability" in out
        assert "repro_" in out  # the exposition rendered
