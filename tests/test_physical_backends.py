"""Backend registry tests: selection precedence, numpy fallback, reporting.

The registry (`repro.core.physical_backends`) is the single place the
``physical_backend=`` knob and the ``REPRO_PHYSICAL_BACKEND`` environment
variable are interpreted; these tests pin its precedence rules, the
numpy-missing semantics (explicit request raises, environment request
warns and degrades to slab), and the end-to-end threading through
``Embedding``, ``LayeredLabeler``, ``make_sharded_labeler``,
``run_workload`` and ``DurableStore``.
"""

from __future__ import annotations

import warnings

import pytest

from repro.algorithms import AdaptivePMA, ClassicalPMA, make_sharded_labeler
from repro.analysis.runner import run_workload
from repro.core import physical_backends as pb
from repro.core.embedding import Embedding
from repro.core.layered import make_corollary11_labeler
from repro.core.physical import PhysicalArray
from repro.core.physical_reference import ReferencePhysicalArray
from repro.workloads.random_uniform import RandomWorkload

AVAILABLE = pb.available_physical_backends()

needs_vector = pytest.mark.skipif(
    not pb.vector_available(), reason="numpy unavailable"
)


def build_embedding(capacity=8, **kwargs):
    return Embedding(
        capacity,
        fast_factory=lambda cap, slots: AdaptivePMA(cap, slots),
        reliable_factory=lambda cap, slots: ClassicalPMA(cap, slots),
        **kwargs,
    )


class TestResolve:
    def test_default_is_slab(self, monkeypatch):
        monkeypatch.delenv(pb.PHYSICAL_BACKEND_ENV_VAR, raising=False)
        assert pb.resolve_physical_factory(None) is PhysicalArray

    def test_explicit_names(self):
        assert pb.resolve_physical_factory("slab") is PhysicalArray
        assert (
            pb.resolve_physical_factory("reference") is ReferencePhysicalArray
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown physical backend"):
            pb.resolve_physical_factory("bogus")

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "reference")
        assert pb.resolve_physical_factory(None) is ReferencePhysicalArray

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "reference")
        assert pb.resolve_physical_factory("slab") is PhysicalArray

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "")
        assert pb.resolve_physical_factory(None) is PhysicalArray

    def test_bad_env_var_rejected(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown physical backend"):
            pb.resolve_physical_factory(None)

    @needs_vector
    def test_vector_resolves_when_numpy_present(self):
        from repro.core.physical_vector import VectorPhysicalArray

        assert pb.resolve_physical_factory("vector") is VectorPhysicalArray
        assert "vector" in AVAILABLE


class TestNumpyMissing:
    """Simulate a numpy-less interpreter by blanking the imported class."""

    @pytest.fixture(autouse=True)
    def _no_vector(self, monkeypatch):
        monkeypatch.setattr(pb, "VectorPhysicalArray", None)
        monkeypatch.setattr(
            pb, "_VECTOR_IMPORT_ERROR", "No module named 'numpy'"
        )

    def test_explicit_vector_raises(self):
        with pytest.raises(RuntimeError, match="requires numpy"):
            pb.resolve_physical_factory("vector")

    def test_env_vector_warns_and_degrades_to_slab(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "vector")
        with pytest.warns(RuntimeWarning, match="falling back"):
            factory = pb.resolve_physical_factory(None)
        assert factory is PhysicalArray

    def test_vector_absent_from_available(self):
        assert not pb.vector_available()
        assert pb.available_physical_backends() == ("reference", "slab")

    def test_embedding_still_builds_under_env_vector(self, monkeypatch):
        monkeypatch.setenv(pb.PHYSICAL_BACKEND_ENV_VAR, "vector")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            embedding = build_embedding()
        assert embedding.physical_backend == "slab"


class TestBackendNameOf:
    @pytest.mark.parametrize("name", AVAILABLE)
    def test_round_trip(self, name):
        factory = pb.resolve_physical_factory(name)
        assert pb.backend_name_of(factory(8)) == name

    def test_subclass_maps_to_base_backend(self):
        from repro.perf.trace import TracingPhysicalArray

        assert pb.backend_name_of(TracingPhysicalArray(8)) == "slab"

    def test_foreign_object_reports_class_name(self):
        assert pb.backend_name_of(object()) == "object"


class TestThreading:
    """The knob reaches every layer and is reported back out."""

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_embedding(self, name):
        embedding = build_embedding(physical_backend=name)
        assert embedding.physical_backend == name
        for rank in range(1, 9):
            embedding.insert(rank, rank)
        assert embedding.elements() == list(range(1, 9))

    def test_embedding_rejects_both_knobs(self):
        with pytest.raises(ValueError, match="not both"):
            build_embedding(
                physical_factory=PhysicalArray, physical_backend="slab"
            )

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_layered_and_sharded_report_backend(self, name):
        labeler = make_sharded_labeler(
            make_corollary11_labeler, shard_capacity=32, physical_backend=name
        )
        for rank in range(1, 25):
            labeler.insert(rank, rank)
        assert labeler.physical_backend == name
        assert labeler.shard_statistics()["physical_backend"] == name
        assert labeler.elements() == list(range(1, 25))

    def test_non_physical_factory_rejected(self):
        with pytest.raises(ValueError, match="physical_backend"):
            make_sharded_labeler(
                lambda capacity: ClassicalPMA(capacity),
                physical_backend="slab",
            )

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_run_workload_summary(self, name):
        workload = RandomWorkload(64, 128, seed=5)
        labeler = make_corollary11_labeler(128, physical_backend=name)
        result = run_workload(labeler, workload, validate_every=32)
        assert result.summary()["physical_backend"] == name

    @pytest.mark.parametrize("name", AVAILABLE)
    def test_durable_store(self, name, tmp_path):
        from repro.store.store import DurableStore

        store = DurableStore(
            tmp_path / "store",
            algorithm="corollary11",
            shard_capacity=32,
            physical_backend=name,
        )
        try:
            store.put_many([(1, 10), (2, 20)])
            stats = store.labeler.shard_statistics()
            assert stats["physical_backend"] == name
        finally:
            store.close()

    def test_durable_store_rejects_backend_for_classical(self, tmp_path):
        from repro.store.store import DurableStore

        with pytest.raises(ValueError):
            DurableStore(
                tmp_path / "store",
                algorithm="classical",
                physical_backend="slab",
            )

    def test_recovery_across_backends(self, tmp_path):
        """The knob is per-open: a store written under one backend recovers
        under any other, bit-identically."""
        from repro.store.store import DurableStore

        path = tmp_path / "store"
        store = DurableStore(
            path,
            algorithm="corollary11",
            shard_capacity=32,
            physical_backend=AVAILABLE[0],
        )
        items = [(key, key * 11) for key in range(1, 41)]
        store.put_many(items)
        expected = store.keys()
        store.close()
        for name in AVAILABLE[1:]:
            reopened = DurableStore(
                path,
                algorithm="corollary11",
                shard_capacity=32,
                physical_backend=name,
            )
            try:
                assert reopened.keys() == expected
                assert (
                    reopened.labeler.shard_statistics()["physical_backend"]
                    == name
                )
            finally:
                reopened.close()
