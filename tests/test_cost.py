"""Tests for the cost tracker: amortized, worst-case and windowed statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostTracker


class TestBasicStatistics:
    def test_empty_tracker(self):
        tracker = CostTracker()
        assert tracker.operations == 0
        assert tracker.amortized == 0.0
        assert tracker.worst_case == 0
        assert tracker.max_prefix_amortized() == 0.0

    def test_record_and_summaries(self):
        tracker = CostTracker()
        tracker.record_many([1, 5, 0, 2])
        assert tracker.operations == 4
        assert tracker.total_cost == 8
        assert tracker.amortized == 2.0
        assert tracker.worst_case == 5

    def test_negative_cost_rejected(self):
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.record(-1)

    def test_prefix_amortized_matches_definition(self):
        tracker = CostTracker()
        tracker.record_many([4, 0, 2])
        assert tracker.prefix_amortized() == [4.0, 2.0, 2.0]
        assert tracker.max_prefix_amortized() == 4.0

    def test_percentiles_and_tail(self):
        tracker = CostTracker()
        tracker.record_many([1] * 99 + [100])
        assert tracker.percentile(0.5) == 1
        assert tracker.percentile(1.0) == 100
        assert tracker.tail_fraction(100) == pytest.approx(0.01)

    def test_merge_concatenates(self):
        first = CostTracker()
        first.record_many([1, 2])
        second = CostTracker()
        second.record_many([3])
        merged = first.merge(second)
        assert merged.operations == 3
        assert merged.total_cost == 6


class TestWindowStatistics:
    def test_worst_window_found(self):
        tracker = CostTracker()
        tracker.record_many([0, 0, 10, 10, 0, 0])
        stats = tracker.window_statistics(2)
        assert stats.max_total == 20
        assert stats.max_start == 2
        assert stats.max_average == 10.0

    def test_window_larger_than_run_is_clamped(self):
        tracker = CostTracker()
        tracker.record_many([1, 2])
        stats = tracker.window_statistics(10)
        assert stats.window == 2
        assert stats.max_total == 3

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            CostTracker().window_statistics(0)

    def test_lightly_amortized_bound_subtracts_slack(self):
        tracker = CostTracker()
        tracker.record_many([0] * 10 + [50] + [0] * 10)
        # A window of 5 catching the spike has total 50; with slack 50 the
        # residual per-operation constant is zero.
        assert tracker.lightly_amortized_bound(5, slack=50) == 0.0
        assert tracker.lightly_amortized_bound(5, slack=0) == pytest.approx(10.0)

    @settings(max_examples=40, deadline=None)
    @given(costs=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60),
           window=st.integers(min_value=1, max_value=10))
    def test_window_statistics_match_bruteforce(self, costs, window):
        tracker = CostTracker()
        tracker.record_many(costs)
        stats = tracker.window_statistics(window)
        effective = min(window, len(costs))
        brute = max(
            sum(costs[start:start + effective])
            for start in range(len(costs) - effective + 1)
        )
        assert stats.max_total == brute


class TestSummary:
    def test_summary_keys(self):
        tracker = CostTracker()
        tracker.record_many([1, 2, 3])
        summary = tracker.summary()
        assert set(summary) == {
            "operations",
            "total_cost",
            "amortized",
            "worst_case",
            "p50",
            "p99",
            "p999",
        }

    def test_summary_gains_latency_keys_when_latencies_recorded(self):
        tracker = CostTracker()
        tracker.record(1, latency=0.25)
        tracker.record(2, latency=0.75)
        summary = tracker.summary()
        assert summary["latency_p50"] == pytest.approx(0.25)
        assert summary["latency_p99"] == pytest.approx(0.75)
        assert summary["latency_p999"] == pytest.approx(0.75)
        assert summary["latency_max"] == pytest.approx(0.75)


class TestWeightedPercentiles:
    """The batch-blind percentile bugfix: per-op vs per-event views."""

    def test_batched_run_matches_singleton_per_op_percentiles(self):
        # The same 100 logical operations recorded two ways must agree on
        # the per-operation percentile scale (the scale of `amortized`).
        singleton = CostTracker()
        for cost in [1] * 99 + [100]:
            singleton.record(cost)
        batched = CostTracker()
        batched.record_batch(99, 99)  # 99 ops of per-op cost 1
        batched.record(100)
        assert batched.percentile(0.5) == pytest.approx(singleton.percentile(0.5))
        assert batched.percentile(0.99) == pytest.approx(
            singleton.percentile(0.99)
        )
        assert batched.tail_fraction(100) == pytest.approx(
            singleton.tail_fraction(100)
        )

    def test_event_view_still_sees_whole_batches(self):
        tracker = CostTracker()
        tracker.record_batch(1000, 100)  # per-op cost 10
        tracker.record(1)
        # Per-op view: 100 ops of cost 10 and one of cost 1.
        assert tracker.percentile(0.5) == pytest.approx(10.0)
        # Event view: two events with costs {1, 1000}.
        assert tracker.event_percentile(0.5) == 1
        assert tracker.event_percentile(1.0) == 1000
        assert tracker.event_tail_fraction(1000) == pytest.approx(0.5)

    def test_percentile_fraction_validated(self):
        tracker = CostTracker()
        tracker.record(1)
        with pytest.raises(ValueError):
            tracker.percentile(1.5)
        with pytest.raises(ValueError):
            tracker.event_percentile(-0.1)

    @settings(max_examples=40, deadline=None)
    @given(
        batches=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=50),
                st.integers(min_value=1, max_value=8),
            ),
            min_size=1,
            max_size=30,
        ),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_weighted_percentile_matches_expanded_multiset(
        self, batches, fraction
    ):
        import math

        tracker = CostTracker()
        expanded: list[float] = []
        for cost, weight in batches:
            tracker.record_batch(cost * weight, weight)
            expanded.extend([float(cost)] * weight)
        expanded.sort()
        index = min(
            len(expanded) - 1,
            max(0, math.ceil(fraction * len(expanded)) - 1),
        )
        assert tracker.percentile(fraction) == pytest.approx(expanded[index])


class TestLatencyStatistics:
    """Deterministic fake-clock latency capture and percentile edges."""

    def test_no_latency_recorded_is_empty(self):
        tracker = CostTracker()
        tracker.record(5)
        assert tracker.latency_events == 0
        assert tracker.max_latency == 0.0
        assert tracker.latency_percentile(0.999) == 0.0
        assert tracker.latency_summary() == {}

    def test_negative_latency_rejected(self):
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.record(1, latency=-0.001)

    def test_p999_nearest_rank_at_small_n(self):
        # With n=10 samples, nearest-rank p999 targets ceil(0.999*10)=10,
        # i.e. the maximum — the edge small benchmark runs hit constantly.
        tracker = CostTracker()
        for index in range(10):
            tracker.record(1, latency=float(index))
        assert tracker.latency_percentile(0.999) == 9.0
        assert tracker.latency_percentile(0.5) == 4.0
        # A single sample is every percentile.
        lone = CostTracker()
        lone.record(1, latency=0.125)
        for fraction in (0.0, 0.5, 0.999, 1.0):
            assert lone.latency_percentile(fraction) == 0.125

    def test_batch_latency_is_per_operation(self):
        tracker = CostTracker()
        tracker.record_batch(10, 10, latency=1.0)  # 10 ops at 0.1 each
        tracker.record(1, latency=0.5)
        assert tracker.latency_percentile(0.5) == pytest.approx(0.1)
        assert tracker.event_latency_percentile(0.5) == pytest.approx(0.5)
        assert tracker.max_latency == pytest.approx(1.0)

    def test_mixed_none_and_real_latencies(self):
        tracker = CostTracker()
        tracker.record(1)  # no latency — excluded from latency views
        tracker.record(1, latency=0.25)
        assert tracker.latency_events == 1
        assert tracker.latency_percentile(0.5) == pytest.approx(0.25)

    def test_merge_preserves_latencies(self):
        left = CostTracker()
        left.record(1, latency=0.1)
        right = CostTracker()
        right.record_batch(4, 2, latency=0.4)
        merged = left.merge(right)
        assert merged.latency_events == 2
        assert merged.max_latency == pytest.approx(0.4)
        assert merged.latency_percentile(0.999) == pytest.approx(0.2)
        assert merged.latency_percentile(0.0) == pytest.approx(0.1)


class TestRestructureStatistics:
    def test_restructures_are_a_breakdown_not_extra_cost(self):
        tracker = CostTracker()
        tracker.record_many([2, 30, 2])
        tracker.record_restructure("split", 28)
        tracker.record_restructure("split", 12)
        tracker.record_restructure("merge", 7)
        assert tracker.total_cost == 34  # unchanged by the breakdown
        assert tracker.restructures == 3
        assert tracker.restructure_moves == 47
        stats = tracker.structure_statistics()
        assert stats == {
            "merges": 1.0,
            "merge_moves": 7.0,
            "splits": 2.0,
            "split_moves": 40.0,
        }
        assert set(stats) < set(tracker.summary())

    def test_negative_moves_rejected(self):
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.record_restructure("split", -1)

    def test_merge_preserves_restructures(self):
        left = CostTracker()
        left.record(1)
        left.record_restructure("split", 5)
        right = CostTracker()
        right.record_restructure("split", 3)
        right.record_restructure("merge", 2)
        merged = left.merge(right)
        assert merged.restructures == 3
        assert merged.structure_statistics()["split_moves"] == 8.0

    def test_empty_structure_statistics(self):
        assert CostTracker().structure_statistics() == {}


class TestRecordRecorder:
    def test_charges_the_recorders_pre_aggregated_total(self):
        from repro.core.operations import MoveRecorder

        recorder = MoveRecorder()
        recorder.record("a", None, 3)  # placement: cost 1
        recorder.record("a", 3, 7)  # move: cost 1
        recorder.record("a", 7, None)  # removal: cost 0
        tracker = CostTracker()
        tracker.record_recorder(recorder, operations=2)
        assert tracker.total_cost == recorder.total_cost == 2
        assert tracker.operations == 2
        assert tracker.events == 1
        assert tracker.worst_case == 2

    def test_matches_materialized_move_costs(self):
        from repro.core.operations import Move, MoveRecorder

        recorder = MoveRecorder()
        moves = [Move("x", None, 0), Move("y", 0, 5), Move("x", 2, 2)]
        recorder.extend(moves)
        tracker = CostTracker()
        tracker.record_recorder(recorder)
        assert tracker.total_cost == sum(move.cost for move in moves)
        assert tracker.operations == 1
