"""Tests for the cost tracker: amortized, worst-case and windowed statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostTracker


class TestBasicStatistics:
    def test_empty_tracker(self):
        tracker = CostTracker()
        assert tracker.operations == 0
        assert tracker.amortized == 0.0
        assert tracker.worst_case == 0
        assert tracker.max_prefix_amortized() == 0.0

    def test_record_and_summaries(self):
        tracker = CostTracker()
        tracker.record_many([1, 5, 0, 2])
        assert tracker.operations == 4
        assert tracker.total_cost == 8
        assert tracker.amortized == 2.0
        assert tracker.worst_case == 5

    def test_negative_cost_rejected(self):
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.record(-1)

    def test_prefix_amortized_matches_definition(self):
        tracker = CostTracker()
        tracker.record_many([4, 0, 2])
        assert tracker.prefix_amortized() == [4.0, 2.0, 2.0]
        assert tracker.max_prefix_amortized() == 4.0

    def test_percentiles_and_tail(self):
        tracker = CostTracker()
        tracker.record_many([1] * 99 + [100])
        assert tracker.percentile(0.5) == 1
        assert tracker.percentile(1.0) == 100
        assert tracker.tail_fraction(100) == pytest.approx(0.01)

    def test_merge_concatenates(self):
        first = CostTracker()
        first.record_many([1, 2])
        second = CostTracker()
        second.record_many([3])
        merged = first.merge(second)
        assert merged.operations == 3
        assert merged.total_cost == 6


class TestWindowStatistics:
    def test_worst_window_found(self):
        tracker = CostTracker()
        tracker.record_many([0, 0, 10, 10, 0, 0])
        stats = tracker.window_statistics(2)
        assert stats.max_total == 20
        assert stats.max_start == 2
        assert stats.max_average == 10.0

    def test_window_larger_than_run_is_clamped(self):
        tracker = CostTracker()
        tracker.record_many([1, 2])
        stats = tracker.window_statistics(10)
        assert stats.window == 2
        assert stats.max_total == 3

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            CostTracker().window_statistics(0)

    def test_lightly_amortized_bound_subtracts_slack(self):
        tracker = CostTracker()
        tracker.record_many([0] * 10 + [50] + [0] * 10)
        # A window of 5 catching the spike has total 50; with slack 50 the
        # residual per-operation constant is zero.
        assert tracker.lightly_amortized_bound(5, slack=50) == 0.0
        assert tracker.lightly_amortized_bound(5, slack=0) == pytest.approx(10.0)

    @settings(max_examples=40, deadline=None)
    @given(costs=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=60),
           window=st.integers(min_value=1, max_value=10))
    def test_window_statistics_match_bruteforce(self, costs, window):
        tracker = CostTracker()
        tracker.record_many(costs)
        stats = tracker.window_statistics(window)
        effective = min(window, len(costs))
        brute = max(
            sum(costs[start:start + effective])
            for start in range(len(costs) - effective + 1)
        )
        assert stats.max_total == brute


class TestSummary:
    def test_summary_keys(self):
        tracker = CostTracker()
        tracker.record_many([1, 2, 3])
        summary = tracker.summary()
        assert set(summary) == {"operations", "total_cost", "amortized", "worst_case", "p50", "p99"}


class TestRestructureStatistics:
    def test_restructures_are_a_breakdown_not_extra_cost(self):
        tracker = CostTracker()
        tracker.record_many([2, 30, 2])
        tracker.record_restructure("split", 28)
        tracker.record_restructure("split", 12)
        tracker.record_restructure("merge", 7)
        assert tracker.total_cost == 34  # unchanged by the breakdown
        assert tracker.restructures == 3
        assert tracker.restructure_moves == 47
        stats = tracker.structure_statistics()
        assert stats == {
            "merges": 1.0,
            "merge_moves": 7.0,
            "splits": 2.0,
            "split_moves": 40.0,
        }
        assert set(stats) < set(tracker.summary())

    def test_negative_moves_rejected(self):
        tracker = CostTracker()
        with pytest.raises(ValueError):
            tracker.record_restructure("split", -1)

    def test_merge_preserves_restructures(self):
        left = CostTracker()
        left.record(1)
        left.record_restructure("split", 5)
        right = CostTracker()
        right.record_restructure("split", 3)
        right.record_restructure("merge", 2)
        merged = left.merge(right)
        assert merged.restructures == 3
        assert merged.structure_statistics()["split_moves"] == 8.0

    def test_empty_structure_statistics(self):
        assert CostTracker().structure_statistics() == {}


class TestRecordRecorder:
    def test_charges_the_recorders_pre_aggregated_total(self):
        from repro.core.operations import MoveRecorder

        recorder = MoveRecorder()
        recorder.record("a", None, 3)  # placement: cost 1
        recorder.record("a", 3, 7)  # move: cost 1
        recorder.record("a", 7, None)  # removal: cost 0
        tracker = CostTracker()
        tracker.record_recorder(recorder, operations=2)
        assert tracker.total_cost == recorder.total_cost == 2
        assert tracker.operations == 2
        assert tracker.events == 1
        assert tracker.worst_case == 2

    def test_matches_materialized_move_costs(self):
        from repro.core.operations import Move, MoveRecorder

        recorder = MoveRecorder()
        moves = [Move("x", None, 0), Move("y", 0, 5), Move("x", 2, 2)]
        recorder.extend(moves)
        tracker = CostTracker()
        tracker.record_recorder(recorder)
        assert tracker.total_cost == sum(move.cost for move in moves)
        assert tracker.operations == 1
