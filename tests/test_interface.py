"""Tests for the abstract ListLabeler interface and its validation wrappers."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import NaiveLabeler
from repro.core import Operation
from repro.core.exceptions import CapacityError, RankError
from repro.core.interface import ListLabeler
from tests.conftest import ALGORITHM_FACTORIES, COMPOSITE_FACTORIES


class TestRankValidation:
    def test_insert_rank_bounds(self):
        labeler = NaiveLabeler(4)
        with pytest.raises(RankError):
            labeler.insert(0, "x")
        with pytest.raises(RankError):
            labeler.insert(2, "x")  # size is 0, only rank 1 is legal
        labeler.insert(1, "a")
        labeler.insert(2, "b")
        with pytest.raises(RankError):
            labeler.insert(4, "c")

    def test_delete_rank_bounds(self):
        labeler = NaiveLabeler(4)
        with pytest.raises(RankError):
            labeler.delete(1)
        labeler.insert(1, "a")
        with pytest.raises(RankError):
            labeler.delete(2)

    def test_capacity_enforced(self):
        labeler = NaiveLabeler(2)
        labeler.insert(1, "a")
        labeler.insert(2, "b")
        with pytest.raises(CapacityError):
            labeler.insert(1, "c")

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            NaiveLabeler(0)

    def test_num_slots_not_below_capacity(self):
        with pytest.raises(ValueError):
            NaiveLabeler(10, num_slots=5)


class TestViews:
    def test_size_and_len(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, 10)
        labeler.insert(2, 20)
        assert len(labeler) == labeler.size == 2
        assert not labeler.is_empty
        assert not labeler.is_full

    def test_elements_in_order(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, 20)
        labeler.insert(1, 10)
        labeler.insert(3, 30)
        assert labeler.elements() == [10, 20, 30]
        assert list(iter(labeler)) == [10, 20, 30]

    def test_labels_are_monotone_in_rank(self):
        labeler = NaiveLabeler(8)
        for index in range(5):
            labeler.insert(index + 1, index)
        labels = labeler.labels()
        ordered = [labels[element] for element in sorted(labels)]
        assert ordered == sorted(ordered)

    def test_slot_of(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, "a")
        assert labeler.slot_of("a") == 0
        with pytest.raises(KeyError):
            labeler.slot_of("missing")

    def test_rank_of(self):
        labeler = NaiveLabeler(8)
        for index in range(5):
            labeler.insert(index + 1, index * 10)
        for index, element in enumerate(labeler.elements()):
            assert labeler.rank_of(element) == index + 1
        with pytest.raises(KeyError):
            labeler.rank_of("missing")


class TestIndexedLookups:
    """Regression: no registered structure may use the base O(n) scans.

    ``ListLabeler.slot_of`` / ``rank_of`` default to a linear scan of the
    slot array; every registered algorithm and composite keeps an index and
    must override them, so hot-path callers (the R-shell, the applications,
    the interleaving cost model) never silently degrade to O(n) lookups.
    """

    @staticmethod
    def _fill(factory):
        labeler = factory(64)
        for index in range(24):
            labeler.insert(index + 1, Fraction(index))
        return labeler

    @pytest.mark.parametrize(
        "name", sorted(ALGORITHM_FACTORIES) + sorted(COMPOSITE_FACTORIES)
    )
    def test_no_fallback_scan(self, name, monkeypatch):
        factory = {**ALGORITHM_FACTORIES, **COMPOSITE_FACTORIES}[name]
        labeler = self._fill(factory)
        expected_slots = {
            element: labeler.slot_of(element) for element in labeler.elements()
        }

        def scan_used(self, element):
            raise AssertionError(
                f"{type(self).__name__} fell back to the O(n) interface scan"
            )

        monkeypatch.setattr(ListLabeler, "slot_of", scan_used)
        monkeypatch.setattr(ListLabeler, "rank_of", scan_used)
        for index, element in enumerate(labeler.elements()):
            assert labeler.slot_of(element) == expected_slots[element]
            assert labeler.rank_of(element) == index + 1


class TestApply:
    def test_apply_insert_uses_key(self):
        labeler = NaiveLabeler(4)
        labeler.apply(Operation.insert(1, key="k"))
        assert labeler.elements() == ["k"]

    def test_apply_insert_generates_element(self):
        labeler = NaiveLabeler(4)
        labeler.apply(Operation.insert(1))
        assert len(labeler) == 1

    def test_apply_delete(self):
        labeler = NaiveLabeler(4)
        labeler.insert(1, "a")
        labeler.apply(Operation.delete(1))
        assert labeler.is_empty
