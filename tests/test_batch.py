"""Tests for the batch execution API (`insert_batch` / `delete_batch`).

Covers the validated semantics of the interface layer (pre-batch ranks,
deterministic application order, whole-batch validation), the optimized
merged implementations of the dense-array algorithms, and the batched
runner path — including the satellite cases: empty batches, batches
hitting capacity exactly, duplicate ranks, batches on full/empty
structures, and equivalence with the singleton loop for every algorithm.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.algorithms import ClassicalPMA, NaiveLabeler
from repro.core.exceptions import BatchError
from repro.core.validation import check_labeler
from repro.analysis import run_workload
from repro.workloads import RandomWorkload
from repro.workloads.bulk import BulkLoadWorkload


def filled(factory, keys):
    """A labeler pre-loaded with ``keys`` (in order) via singleton inserts."""
    labeler = factory(64)
    for index, key in enumerate(keys):
        labeler.insert(index + 1, key)
    return labeler


class TestInsertBatchSemantics:
    def test_pre_batch_ranks(self):
        labeler = filled(NaiveLabeler, ["a", "b", "c"])
        labeler.insert_batch([(1, "x"), (3, "y")])
        assert labeler.elements() == ["x", "a", "b", "y", "c"]

    def test_duplicate_ranks_keep_given_order(self):
        labeler = filled(NaiveLabeler, ["a", "b"])
        labeler.insert_batch([(2, "x"), (2, "y"), (2, "z")])
        assert labeler.elements() == ["a", "x", "y", "z", "b"]

    def test_unsorted_input_is_applied_deterministically(self):
        labeler = filled(NaiveLabeler, ["a", "b", "c"])
        labeler.insert_batch([(4, "w"), (1, "x"), (2, "y")])
        assert labeler.elements() == ["x", "a", "y", "b", "c", "w"]

    def test_empty_batch_is_a_noop(self):
        labeler = filled(NaiveLabeler, ["a"])
        result = labeler.insert_batch([])
        assert result.count == 0
        assert result.cost == 0
        assert labeler.elements() == ["a"]

    def test_batch_on_empty_structure(self):
        labeler = NaiveLabeler(8)
        labeler.insert_batch([(1, "a"), (1, "b"), (1, "c")])
        assert labeler.elements() == ["a", "b", "c"]

    def test_batch_hits_capacity_exactly(self):
        labeler = NaiveLabeler(6)
        labeler.insert(1, "a")
        labeler.insert_batch([(1, e) for e in "bcdef"])
        assert labeler.is_full
        assert labeler.size == 6

    def test_batch_past_capacity_rejected_without_side_effects(self):
        small = NaiveLabeler(3)
        small.insert(1, "a")
        with pytest.raises(BatchError):
            small.insert_batch([(1, "x"), (1, "y"), (1, "z")])
        assert small.elements() == ["a"]

    def test_out_of_range_rank_rejected_without_side_effects(self):
        labeler = filled(NaiveLabeler, ["a", "b"])
        with pytest.raises(BatchError):
            labeler.insert_batch([(1, "x"), (4, "y")])
        with pytest.raises(BatchError):
            labeler.insert_batch([(0, "x")])
        assert labeler.elements() == ["a", "b"]

    def test_insert_batch_on_full_structure_rejected(self):
        labeler = NaiveLabeler(2)
        labeler.insert_batch([(1, "a"), (1, "b")])
        assert labeler.is_full
        with pytest.raises(BatchError):
            labeler.insert_batch([(1, "c")])


class TestDeleteBatchSemantics:
    def test_pre_batch_ranks(self):
        labeler = filled(NaiveLabeler, ["a", "b", "c", "d"])
        labeler.delete_batch([1, 3])
        assert labeler.elements() == ["b", "d"]

    def test_order_of_ranks_is_irrelevant(self):
        first = filled(NaiveLabeler, list("abcdef"))
        second = filled(NaiveLabeler, list("abcdef"))
        first.delete_batch([2, 5, 1])
        second.delete_batch([5, 1, 2])
        assert first.elements() == second.elements() == ["c", "d", "f"]

    def test_duplicate_ranks_rejected_without_side_effects(self):
        labeler = filled(NaiveLabeler, ["a", "b", "c"])
        with pytest.raises(BatchError):
            labeler.delete_batch([2, 2])
        assert labeler.elements() == ["a", "b", "c"]

    def test_out_of_range_rank_rejected(self):
        labeler = filled(NaiveLabeler, ["a", "b"])
        with pytest.raises(BatchError):
            labeler.delete_batch([3])
        with pytest.raises(BatchError):
            labeler.delete_batch([0])
        assert labeler.elements() == ["a", "b"]

    def test_empty_batch_is_a_noop(self):
        labeler = filled(NaiveLabeler, ["a"])
        assert labeler.delete_batch([]).count == 0
        assert labeler.elements() == ["a"]

    def test_drain_full_structure(self):
        labeler = NaiveLabeler(4)
        labeler.insert_batch([(1, e) for e in "abcd"])
        labeler.delete_batch([1, 2, 3, 4])
        assert labeler.is_empty


class TestBatchResult:
    def test_cost_and_amortized(self):
        labeler = NaiveLabeler(16)
        result = labeler.insert_batch([(1, e) for e in "abcdefgh"])
        assert result.count == 8
        assert result.cost == sum(r.cost for r in result.results)
        assert result.amortized == result.cost / 8
        assert all(move.cost in (0, 1) for move in result.moves)

    def test_merged_path_reports_all_moves(self):
        labeler = ClassicalPMA(64)
        for index in range(20):
            labeler.insert(index + 1, index * 10)
        before = {e: labeler.slot_of(e) for e in labeler.elements()}
        result = labeler.insert_batch(
            [(5, 31), (5, 32), (5, 33), (9, 71), (9, 72), (12, 101), (12, 102), (1, -1)]
        )
        moved = set(result.moved_elements())
        for element, old_slot in before.items():
            if labeler.slot_of(element) != old_slot:
                assert element in moved
        check_labeler(labeler)


def _key_between(reference, rank):
    """A Fraction strictly between the keys at ranks ``rank - 1`` and ``rank``."""
    lower = reference[rank - 2] if rank >= 2 else None
    upper = reference[rank - 1] if rank - 1 < len(reference) else None
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        return upper - 1
    if upper is None:
        return lower + 1
    return (lower + upper) / 2


@pytest.mark.parametrize("batch_len", [1, 3, 16, 40])
def test_insert_batch_equivalent_to_singleton_loop(algorithm_factory, batch_len):
    """For every registered algorithm, a batch must equal the singleton loop."""
    batched = algorithm_factory(96)
    looped = algorithm_factory(96)
    reference = [Fraction(index) for index in range(30)]
    for index, key in enumerate(reference):
        batched.insert(index + 1, key)
        looped.insert(index + 1, key)
    ranks = sorted(([1, 5, 5, 12, 12, 12, 20, 31] * 5)[:batch_len])
    items = []
    for offset, rank in enumerate(ranks):
        key = _key_between(reference, rank + offset)
        reference.insert(rank + offset - 1, key)
        items.append((rank, key))
    result = batched.insert_batch(items)
    assert result.count == batch_len
    for offset, (rank, element) in enumerate(items):
        looped.insert(rank + offset, element)
    assert list(batched.elements()) == list(looped.elements()) == reference
    check_labeler(batched, expected=reference)


@pytest.mark.parametrize("ranks", [[1], [1, 2, 3], [5, 1, 9, 3, 7]])
def test_delete_batch_equivalent_to_singleton_loop(algorithm_factory, ranks):
    batched = algorithm_factory(96)
    looped = algorithm_factory(96)
    for index in range(20):
        batched.insert(index + 1, Fraction(index))
        looped.insert(index + 1, Fraction(index))
    batched.delete_batch(ranks)
    for rank in sorted(ranks, reverse=True):
        looped.delete(rank)
    assert list(batched.elements()) == list(looped.elements())
    check_labeler(batched)


class TestWorkloadBatches:
    def test_iter_batches_concatenates_to_the_stream(self):
        workload = RandomWorkload(200, 150, delete_fraction=0.3, seed=9)
        stream = list(workload)
        batches = list(workload.iter_batches(16))
        assert [op for batch in batches for op in batch] == stream
        for batch in batches:
            assert len(batch) <= 16
            assert len({op.kind for op in batch}) == 1

    def test_bulk_workload_emits_run_aligned_batches(self):
        workload = BulkLoadWorkload(256, batch_size=32, seed=4)
        batches = list(workload.iter_batches(64))
        assert [op for batch in batches for op in batch] == list(workload)
        # Natural runs are 32 long, so no batch may straddle two runs.
        assert all(len(batch) == 32 for batch in batches)

    def test_iter_batches_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(BulkLoadWorkload(8).iter_batches(0))
        with pytest.raises(ValueError):
            list(RandomWorkload(8, 8).iter_batches(0))


class TestBatchedRunner:
    @pytest.mark.parametrize(
        "workload_factory",
        [
            lambda: RandomWorkload(180, 150, seed=5),
            lambda: RandomWorkload(220, 150, delete_fraction=0.35, seed=6),
            lambda: BulkLoadWorkload(240, batch_size=32, seed=7),
        ],
    )
    def test_batched_run_matches_singleton_run(self, workload_factory):
        singleton = run_workload(
            ClassicalPMA(workload_factory().capacity),
            workload_factory(),
            validate_every=50,
        )
        batched = run_workload(
            ClassicalPMA(workload_factory().capacity),
            workload_factory(),
            batch_size=32,
            validate_every=50,
        )
        assert batched.final_keys == singleton.final_keys
        assert list(batched.labeler.elements()) == list(singleton.labeler.elements())
        assert batched.tracker.operations == singleton.tracker.operations

    def test_batch_statistics_are_reported(self):
        result = run_workload(
            ClassicalPMA(256), BulkLoadWorkload(256, batch_size=32, seed=8),
            batch_size=32,
        )
        stats = result.tracker.batch_statistics()
        assert stats["batches"] == result.tracker.batches
        assert stats["mean_batch_size"] == pytest.approx(32.0)
        assert stats["amortized_per_element"] <= stats["amortized_per_batch"]
        assert result.summary()["batch_size"] == 32.0

    def test_stop_after_truncates_mid_batch(self):
        result = run_workload(
            ClassicalPMA(256), BulkLoadWorkload(256, batch_size=32, seed=8),
            batch_size=32, stop_after=40,
        )
        assert result.tracker.operations == 40
        assert len(result.final_keys) == 40
