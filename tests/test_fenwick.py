"""Unit and property tests for the Fenwick occupancy tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree(self):
        tree = FenwickTree(8)
        assert tree.total == 0
        assert tree.prefix(8) == 0
        assert tree.count(0, 8) == 0

    def test_set_and_prefix(self):
        tree = FenwickTree(10)
        tree.set(3, 1)
        tree.set(7, 1)
        assert tree.total == 2
        assert tree.prefix(4) == 1
        assert tree.prefix(8) == 2
        assert tree.count(4, 8) == 1

    def test_set_idempotent(self):
        tree = FenwickTree(5)
        tree.set(2, 1)
        tree.set(2, 1)
        assert tree.total == 1
        tree.set(2, 0)
        tree.set(2, 0)
        assert tree.total == 0

    def test_set_rejects_non_binary(self):
        tree = FenwickTree(4)
        with pytest.raises(ValueError):
            tree.set(0, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_value_roundtrip(self):
        tree = FenwickTree(6)
        tree.set(5, 1)
        assert tree.value(5) == 1
        assert tree.value(0) == 0


class TestSelect:
    def test_select_finds_kth_occupied(self):
        tree = FenwickTree(10)
        occupied = [1, 4, 5, 9]
        for index in occupied:
            tree.set(index, 1)
        for k, index in enumerate(occupied, start=1):
            assert tree.select(k) == index

    def test_select_out_of_range(self):
        tree = FenwickTree(4)
        tree.set(0, 1)
        with pytest.raises(IndexError):
            tree.select(2)
        with pytest.raises(IndexError):
            tree.select(0)

    def test_rank_of(self):
        tree = FenwickTree(8)
        tree.set(2, 1)
        tree.set(6, 1)
        assert tree.rank_of(2) == 1
        assert tree.rank_of(6) == 2

    def test_rank_of_unoccupied_raises(self):
        tree = FenwickTree(8)
        with pytest.raises(ValueError):
            tree.rank_of(3)


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=64),
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
            max_size=80,
        ),
    )
    def test_matches_naive_bit_vector(self, size, updates):
        tree = FenwickTree(size)
        reference = [0] * size
        for index, bit in updates:
            if index >= size:
                continue
            tree.set(index, int(bit))
            reference[index] = int(bit)
        assert tree.total == sum(reference)
        for end in range(size + 1):
            assert tree.prefix(end) == sum(reference[:end])
        occupied = [i for i, bit in enumerate(reference) if bit]
        for k, index in enumerate(occupied, start=1):
            assert tree.select(k) == index
