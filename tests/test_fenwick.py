"""Unit and property tests for the Fenwick occupancy tree."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fenwick import FenwickTree


class TestBasics:
    def test_empty_tree(self):
        tree = FenwickTree(8)
        assert tree.total == 0
        assert tree.prefix(8) == 0
        assert tree.count(0, 8) == 0

    def test_set_and_prefix(self):
        tree = FenwickTree(10)
        tree.set(3, 1)
        tree.set(7, 1)
        assert tree.total == 2
        assert tree.prefix(4) == 1
        assert tree.prefix(8) == 2
        assert tree.count(4, 8) == 1

    def test_set_idempotent(self):
        tree = FenwickTree(5)
        tree.set(2, 1)
        tree.set(2, 1)
        assert tree.total == 1
        tree.set(2, 0)
        tree.set(2, 0)
        assert tree.total == 0

    def test_set_rejects_non_binary(self):
        tree = FenwickTree(4)
        with pytest.raises(ValueError):
            tree.set(0, 2)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FenwickTree(-1)

    def test_value_roundtrip(self):
        tree = FenwickTree(6)
        tree.set(5, 1)
        assert tree.value(5) == 1
        assert tree.value(0) == 0


class TestSelect:
    def test_select_finds_kth_occupied(self):
        tree = FenwickTree(10)
        occupied = [1, 4, 5, 9]
        for index in occupied:
            tree.set(index, 1)
        for k, index in enumerate(occupied, start=1):
            assert tree.select(k) == index

    def test_select_out_of_range(self):
        tree = FenwickTree(4)
        tree.set(0, 1)
        with pytest.raises(IndexError):
            tree.select(2)
        with pytest.raises(IndexError):
            tree.select(0)

    def test_rank_of(self):
        tree = FenwickTree(8)
        tree.set(2, 1)
        tree.set(6, 1)
        assert tree.rank_of(2) == 1
        assert tree.rank_of(6) == 2

    def test_rank_of_unoccupied_raises(self):
        tree = FenwickTree(8)
        with pytest.raises(ValueError):
            tree.rank_of(3)


class TestAgainstReference:
    @settings(max_examples=60, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=64),
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63), st.booleans()),
            max_size=80,
        ),
    )
    def test_matches_naive_bit_vector(self, size, updates):
        tree = FenwickTree(size)
        reference = [0] * size
        for index, bit in updates:
            if index >= size:
                continue
            tree.set(index, int(bit))
            reference[index] = int(bit)
        assert tree.total == sum(reference)
        for end in range(size + 1):
            assert tree.prefix(end) == sum(reference[:end])
        occupied = [i for i, bit in enumerate(reference) if bit]
        for k, index in enumerate(occupied, start=1):
            assert tree.select(k) == index
        for rank, index in enumerate(occupied, start=1):
            assert tree.rank_of(index) == rank
        for index, bit in enumerate(reference):
            assert tree.value(index) == bit
            if not bit:
                with pytest.raises(ValueError):
                    tree.rank_of(index)


class TestEdges:
    def test_empty_tree_of_size_zero(self):
        tree = FenwickTree(0)
        assert tree.size == 0
        assert tree.total == 0
        assert tree.prefix(0) == 0
        assert tree.count(0, 0) == 0
        with pytest.raises(IndexError):
            tree.select(1)

    def test_single_slot_tree(self):
        tree = FenwickTree(1)
        with pytest.raises(IndexError):
            tree.select(1)
        tree.set(0, 1)
        assert tree.select(1) == 0
        assert tree.rank_of(0) == 1
        assert tree.prefix(1) == 1
        tree.set(0, 0)
        assert tree.total == 0
        with pytest.raises(ValueError):
            tree.rank_of(0)

    def test_out_of_range_updates_rejected(self):
        tree = FenwickTree(4)
        with pytest.raises(IndexError):
            tree.set(4, 1)
        with pytest.raises(IndexError):
            tree.add(7, 3)


class TestWeightedAgainstReference:
    """The ``add`` API used by the shard directory, vs. a naive count list."""

    @settings(max_examples=80, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=32),
        updates=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.integers(min_value=-4, max_value=16),
            ),
            max_size=60,
        ),
    )
    def test_matches_naive_count_vector(self, size, updates):
        tree = FenwickTree(size)
        reference = [0] * size
        for index, delta in updates:
            if index >= size:
                continue
            if reference[index] + delta < 0:
                with pytest.raises(ValueError):
                    tree.add(index, delta)
                continue
            tree.add(index, delta)
            reference[index] += delta
        assert tree.total == sum(reference)
        for end in range(size + 1):
            assert tree.prefix(end) == sum(reference[:end])
        for index, count in enumerate(reference):
            assert tree.value(index) == count
        # select(k) finds the position holding the k-th unit — the shard
        # directory's rank→shard routing primitive.
        unit_positions = [
            index for index, count in enumerate(reference) for _ in range(count)
        ]
        for k, index in enumerate(unit_positions, start=1):
            assert tree.select(k) == index
        with pytest.raises(IndexError):
            tree.select(sum(reference) + 1)

    def test_negative_counts_rejected(self):
        tree = FenwickTree(3)
        tree.add(1, 5)
        with pytest.raises(ValueError):
            tree.add(1, -6)
        assert tree.value(1) == 5

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(st.integers(min_value=0, max_value=12), max_size=40))
    def test_bulk_constructor_matches_incremental(self, values):
        bulk = FenwickTree.from_values(values)
        incremental = FenwickTree(len(values))
        for index, value in enumerate(values):
            incremental.add(index, value)
        assert bulk._tree == incremental._tree
        assert bulk.total == sum(values)
        for end in range(len(values) + 1):
            assert bulk.prefix(end) == sum(values[:end])

    def test_bulk_constructor_rejects_negative(self):
        with pytest.raises(ValueError):
            FenwickTree.from_values([1, -1])
