"""Unit tests for rebuild-plan construction (Figures 3 and 4)."""

from __future__ import annotations

from repro.core.rebuild import (
    CLEANUP,
    INCORPORATE,
    PLACE,
    RebuildPlan,
    RebuildStep,
    build_plan,
    _interval_boundaries,
)


class TestIntervals:
    def test_no_difference_means_no_intervals(self):
        state = ["a", None, "b"]
        assert _interval_boundaries(state, list(state)) == []

    def test_single_dirty_interval(self):
        shadow = ["a", "b", None, "c"]
        checkpoint = ["a", None, "b", "c"]
        assert _interval_boundaries(shadow, checkpoint) == [(1, 2)]

    def test_clean_occupied_slots_delimit(self):
        # Mirrors Figure 3: two disjoint dirty regions separated by clean slots.
        shadow = ["a", "b", None, "e", "f", None, "i", "j"]
        checkpoint = ["a", None, "b", "e", "f", "x", "i", "j"]
        intervals = _interval_boundaries(shadow, checkpoint)
        assert intervals == [(1, 2), (5, 5)]

    def test_empty_in_both_does_not_split(self):
        shadow = ["a", "b", None, "c", None]
        checkpoint = ["a", None, None, "b", "c"]
        assert _interval_boundaries(shadow, checkpoint) == [(1, 4)]


class TestPlanConstruction:
    def test_plan_reaches_checkpoint_when_simulated(self):
        shadow = ["a", "c", None, "d", None, "g"]
        checkpoint = ["a", "b", "c", "d", "e", "g"]
        plan = build_plan(shadow, checkpoint)
        state = list(shadow)
        position = {item: idx for idx, item in enumerate(state) if item is not None}
        while not plan.is_complete:
            step = plan.advance()
            if step.kind == CLEANUP:
                state[position.pop(step.element)] = None
            else:
                if step.element in position:
                    state[position[step.element]] = None
                state[step.target_f_index] = step.element
                position[step.element] = step.target_f_index
        assert state == checkpoint

    def test_deleted_elements_get_cleanup_steps(self):
        shadow = ["a", "b", "c"]
        checkpoint = ["a", None, "c"]
        plan = build_plan(shadow, checkpoint)
        kinds = [step.kind for step in plan.pending_steps()]
        assert kinds == [CLEANUP]

    def test_new_elements_get_incorporate_steps(self):
        shadow = ["a", None, "c"]
        checkpoint = ["a", "b", "c"]
        plan = build_plan(shadow, checkpoint)
        steps = plan.pending_steps()
        assert len(steps) == 1
        assert steps[0].kind == INCORPORATE
        assert steps[0].target_f_index == 1

    def test_target_slots_are_free_when_reached(self):
        """Simulate the plan and assert no step overwrites a live entry."""
        shadow = [None, "b", "c", "d", None, None]
        checkpoint = ["a", "b", "c", None, "d", "e"]
        plan = build_plan(shadow, checkpoint)
        state = list(shadow)
        position = {item: idx for idx, item in enumerate(state) if item is not None}
        for step in plan.pending_steps():
            if step.kind == CLEANUP:
                state[position.pop(step.element)] = None
                continue
            target = step.target_f_index
            assert state[target] is None or state[target] == step.element
            if step.element in position:
                state[position[step.element]] = None
            state[target] = step.element
            position[step.element] = target
        assert state == checkpoint

    def test_identical_states_produce_empty_plan(self):
        state = ["a", None, "b"]
        plan = build_plan(state, list(state))
        assert plan.total_steps == 0
        assert plan.is_complete


class TestPlanObject:
    def test_cursor_and_peek(self):
        plan = RebuildPlan(
            [RebuildStep(PLACE, "a", 1), RebuildStep(PLACE, "b", 2)], ["x"]
        )
        assert plan.remaining_steps == 2
        assert plan.peek().element == "a"
        plan.advance()
        assert plan.remaining_steps == 1
        plan.advance()
        assert plan.is_complete
        assert plan.peek() is None
