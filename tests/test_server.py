"""Networked store and replication fences.

Four walls:

* **Protocol** — framing round-trips the full codec value space, rejects
  oversized and truncated messages instead of misreading them.
* **Serving** — every command works over the wire; errors come back typed
  (``KeyError`` parity with the local API, ``ReadOnlyError`` on replica
  writes); concurrent clients with disjoint key ranges merge exactly.
* **Replication convergence** — a seeded mixed workload runs on the
  primary while a replica streams; the replica is killed at parametrized
  points (mid-stream, mid-catch-up, behind a compaction horizon),
  restarted, and must converge to the primary's *byte-identical* state:
  same keys, same ``items()``, same composed labels, same per-shard
  physical layout — the same fingerprint the crash-injection differential
  uses.  The replica's WAL must be a verbatim suffix of the primary's.
* **Failover** — a promoted replica serves the primary's exact final
  state and accepts writes.
"""

from __future__ import annotations

import socket
import threading
import time
from pathlib import Path

import pytest

from repro.store import codec
from repro.store.client import ReadOnlyError, StoreClient, StoreClientError
from repro.store.harness import apply_to_store, fingerprint, make_ops, state_digest
from repro.store.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    decode_body,
    encode_message,
    recv_message,
    send_message,
)
from repro.store.replica import Replica
from repro.store.server import ServerThread
from repro.store.service import StoreService
from repro.store.store import WAL_FILENAME, DurableStore


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------
@pytest.fixture
def primary(tmp_path):
    """A served primary: (service, ServerThread) over a fresh store."""
    store = DurableStore(
        tmp_path / "primary", algorithm="classical", shard_capacity=32,
        sync_policy="never",
    )
    service = StoreService(store, stripes=8)
    with ServerThread(service) as server:
        yield service, server
    service.close()


def wait_for(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError(f"timed out waiting for {message}")
        time.sleep(0.005)


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_round_trips_codec_value_space(self):
        from fractions import Fraction

        message = {
            "cmd": "PUT",
            "key": (1, Fraction(22, 7), "x"),
            "value": {b"\x00bytes": [None, True, -17, 3.5]},
            3: "int-keyed",
        }
        framed = encode_message(message)
        assert framed[:4] == len(framed[4:]).to_bytes(4, "big")
        assert decode_body(framed[4:]) == message

    def test_round_trips_over_a_real_socket(self):
        left, right = socket.socketpair()
        try:
            payload = {"cmd": "PING", "blob": "x" * 100_000}
            send_message(left, payload)
            assert recv_message(right) == payload
        finally:
            left.close()
            right.close()

    def test_oversized_length_prefix_is_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((MAX_MESSAGE_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError, match="length prefix"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_truncated_body_is_rejected(self):
        left, right = socket.socketpair()
        try:
            framed = encode_message({"cmd": "PING"})
            left.sendall(framed[: len(framed) - 3])
            left.close()
            with pytest.raises(ProtocolError, match="closed"):
                recv_message(right)
        finally:
            right.close()

    def test_clean_eof_returns_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert recv_message(right) is None
        finally:
            right.close()

    def test_non_object_body_is_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            decode_body(codec.dumps([1, 2, 3]).encode())


# ---------------------------------------------------------------------------
# Serving: commands, typed errors, concurrent clients
# ---------------------------------------------------------------------------
class TestStoreServer:
    def test_every_command_round_trips(self, primary):
        service, server = primary
        with StoreClient(*server.address) as client:
            assert client.ping() == 0
            client.put("alice", 1)
            assert client.put_many([("bob", 2), ("carol", 3)]) == 2
            assert client.get("bob") == 2
            assert client.get("nope", "fallback") == "fallback"
            with pytest.raises(KeyError):
                client.get("nope")
            assert client.contains("alice")
            assert not client.contains("nope")
            assert client.size() == 3
            assert client.count_range("a", "bz") == 2
            assert client.range_scan("b", "z") == [("bob", 2), ("carol", 3)]
            assert client.range_scan(limit=2) == [("alice", 1), ("bob", 2)]
            pages = list(client.scan_pages(page_size=2))
            assert [len(page) for page in pages] == [2, 1]
            assert [pair for page in pages for pair in page] == [
                ("alice", 1), ("bob", 2), ("carol", 3),
            ]
            client.delete("alice")
            assert client.delete_many(["bob"]) == 1
            with pytest.raises(KeyError):
                client.delete("alice")
            report = client.verify()
            assert report["keys"] == 1
            stats = client.stats()
            assert stats["last_lsn"] == service.store.last_lsn

    def test_unknown_command_and_bad_page_size(self, primary):
        _, server = primary
        with StoreClient(*server.address) as client:
            with pytest.raises(StoreClientError, match="unknown command"):
                client._call("FROBNICATE")
            with pytest.raises(StoreClientError, match="page_size"):
                client._call("SCAN_PAGES", page_size=10**9)
            with pytest.raises(StoreClientError, match="page_size"):
                client._call("SCAN_PAGES", page_size=0)

    def test_values_survive_the_wire_exactly(self, primary):
        from fractions import Fraction

        _, server = primary
        with StoreClient(*server.address) as client:
            value = {"frac": Fraction(1, 3), "tup": (1, (2, b"\xff"))}
            client.put(7, value)
            assert client.get(7) == value

    def test_concurrent_clients_merge_exactly(self, primary):
        service, server = primary
        clients = 4
        keys_each = 60
        errors: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                with StoreClient(*server.address) as client:
                    base = slot * 10**6
                    for i in range(keys_each):
                        if i % 10 == 9:
                            client.put_many(
                                [(base + 10**5 + i * 4 + j, j) for j in range(4)]
                            )
                        else:
                            client.put(base + i, f"c{slot}-{i}")
                        if i % 7 == 6:
                            scan = client.range_scan(base, base + 10**5)
                            keys = [key for key, _ in scan]
                            assert keys == sorted(keys)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,))
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[0]

        # Disjoint key ranges: the union is exact, and every client's
        # writes are all present.
        with StoreClient(*server.address) as client:
            assert client.size() == service.size()
            report = client.verify()
        per_client = keys_each - keys_each // 10 + (keys_each // 10) * 4
        assert report["keys"] == clients * per_client

    def test_read_only_server_rejects_mutations(self, tmp_path):
        store = DurableStore(tmp_path / "ro", sync_policy="never")
        service = StoreService(store)
        with ServerThread(service, read_only=True) as server:
            with StoreClient(*server.address) as client:
                with pytest.raises(ReadOnlyError):
                    client.put("x", 1)
                with pytest.raises(ReadOnlyError):
                    client.delete_many(["x"])
                assert client.size() == 0  # reads still served
        service.close()

    def test_replicate_from_ahead_of_primary_is_rejected(self, primary):
        _, server = primary
        sock = socket.create_connection(server.address, timeout=5)
        try:
            send_message(sock, {"cmd": "REPLICATE", "after": 999})
            response = recv_message(sock)
            assert response["ok"] is False
            assert "ahead" in response["error"]
        finally:
            sock.close()


# ---------------------------------------------------------------------------
# Replication: bootstrap, streaming, kill-point convergence, catch-up
# ---------------------------------------------------------------------------
def _converged(service: StoreService, replica: Replica) -> None:
    """The byte-identical convergence assertion: same fingerprint."""
    replica.wait_caught_up(service.store.last_lsn)
    assert fingerprint(replica.service.store.map) == fingerprint(
        service.store.map
    )
    assert state_digest(replica.service.store.map) == state_digest(
        service.store.map
    )
    replica.service.verify()


class TestReplication:
    FRAMES = 90

    @pytest.mark.parametrize("kill_fraction", [0.2, 0.5, 0.8])
    @pytest.mark.parametrize("compact_between", [False, True])
    def test_kill_and_restart_converges_exactly(
        self, primary, tmp_path, kill_fraction, compact_between
    ):
        """Kill the replica at a workload point, write on, restart it.

        With ``compact_between`` the primary compacts while the replica is
        away, moving the durable horizon past the replica's LSN — the
        restart must fall back to snapshot bootstrap.  Either way the
        restarted replica converges to the primary's exact state.
        """
        service, server = primary
        ops = make_ops(self.FRAMES, seed=31 + int(kill_fraction * 10))
        kill_at = int(self.FRAMES * kill_fraction)

        replica = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        replica.wait_ready()
        for op in ops[:kill_at]:
            apply_to_store(service, op)
        _converged(service, replica)
        replica.stop()
        wait_for(
            lambda: server.replica_count == 0, message="replica disconnect"
        )

        for op in ops[kill_at:]:
            apply_to_store(service, op)
        if compact_between:
            service.compact()
            assert service.store.durable_horizon == service.store.last_lsn

        restarted = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        restarted.wait_ready()
        _converged(service, restarted)
        if compact_between:
            # The log tail was gone: only a snapshot could bridge the gap.
            assert restarted.bootstrap_count == 1
        else:
            # The log still held the tail: no re-bootstrap, pure catch-up,
            # and the replica's WAL is a verbatim suffix of the primary's.
            assert restarted.bootstrap_count == 0
            primary_wal = (service.store.directory / WAL_FILENAME).read_bytes()
            replica_wal = (Path(tmp_path) / "replica" / WAL_FILENAME).read_bytes()
            assert replica_wal and primary_wal.endswith(replica_wal)
        restarted.stop()

    def test_kill_mid_catch_up_then_restart_converges(self, primary, tmp_path):
        """The CI smoke scenario: kill the puller *during* catch-up."""
        service, server = primary
        replica = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        replica.wait_ready()
        for op in make_ops(20, seed=76):
            apply_to_store(service, op)
        _converged(service, replica)
        base = replica.last_applied_lsn
        replica.stop()
        wait_for(
            lambda: server.replica_count == 0, message="replica disconnect"
        )

        for op in make_ops(150, seed=77):
            apply_to_store(service, op)

        restarted = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        # Kill as soon as catch-up has made *some* progress — with luck
        # mid-chunk (the puller checks its stop flag between frames); if
        # the stream already drained, the point still covers restart
        # safety after an abrupt stop.
        wait_for(
            lambda: restarted.last_applied_lsn > base,
            message="catch-up progress",
        )
        restarted.stop()
        assert base < restarted.last_applied_lsn <= service.store.last_lsn

        final = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        final.wait_ready()
        _converged(service, final)
        final.stop()

    def test_live_streaming_keeps_lag_bounded(self, primary, tmp_path):
        service, server = primary
        replica = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        replica.wait_ready()
        for op in make_ops(60, seed=5):
            apply_to_store(service, op)
        _converged(service, replica)
        assert replica.lag == 0
        assert replica.primary_lsn == service.store.last_lsn
        replica.stop()

    def test_replica_serves_reads_and_rejects_writes(self, primary, tmp_path):
        service, server = primary
        for op in make_ops(40, seed=9):
            apply_to_store(service, op)
        replica = Replica(
            tmp_path / "replica", server.address, serve=True,
            sync_policy="never",
        ).start()
        replica.wait_ready()
        replica.wait_caught_up(service.store.last_lsn)
        with StoreClient(*replica.address) as client:
            assert client.size() == service.size()
            scan = client.range_scan()
            assert scan == service.range_scan()
            with pytest.raises(ReadOnlyError):
                client.put("x", 1)
        replica.stop()

    def test_retention_floor_tracks_connected_replicas(self, primary, tmp_path):
        """Compaction keeps the tail a live replica still streams."""
        service, server = primary
        replica = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        replica.wait_ready()
        for op in make_ops(30, seed=13):
            apply_to_store(service, op)
        _converged(service, replica)
        acked = service.store.last_lsn
        for op in make_ops(10, seed=14, key_space=100):
            apply_to_store(service, op)
        # The replica acked `acked` at the latest; compaction must keep
        # the horizon at or below the floor, never past a live stream.
        service.compact()
        assert service.store.durable_horizon <= service.store.last_lsn
        assert service.store.durable_horizon >= 0
        _converged(service, replica)
        assert replica.bootstrap_count == 1  # only the initial bootstrap
        replica.stop()

    def test_promote_serves_the_primary_final_state(self, primary, tmp_path):
        """Failover: the promoted replica is the primary, exactly."""
        service, server = primary
        ops = make_ops(70, seed=21)
        replica = Replica(
            tmp_path / "replica", server.address, serve=True,
            sync_policy="never",
        ).start()
        replica.wait_ready()
        for op in ops:
            apply_to_store(service, op)
        _converged(service, replica)
        expected = fingerprint(service.store.map)

        promoted = replica.promote()
        # Exact final state of the old primary, by fingerprint.
        assert fingerprint(promoted.store.map) == expected
        # The write path is open — over the wire too.
        with StoreClient(*replica.address) as client:
            client.put(10**9 + 7, "written-after-promotion")
            assert client.get(10**9 + 7) == "written-after-promotion"
        assert promoted.get(10**9 + 7) == "written-after-promotion"
        promoted.verify()
        replica.stop()

    def test_promoted_replica_recovers_durably(self, primary, tmp_path):
        """Writes accepted after promotion survive a restart."""
        service, server = primary
        for op in make_ops(25, seed=3):
            apply_to_store(service, op)
        replica = Replica(
            tmp_path / "replica", server.address, sync_policy="never"
        ).start()
        replica.wait_ready()
        _converged(service, replica)
        promoted = replica.promote()
        promoted.put(10**9 + 1, "after-failover")
        expected = fingerprint(promoted.store.map)
        replica.stop()

        reopened = DurableStore(tmp_path / "replica", sync_policy="never")
        assert fingerprint(reopened.map) == expected
        reopened.verify()
        reopened.close()
