"""Tests for the blocked reference model used by the workload runner."""

from __future__ import annotations

import random

import pytest

from repro.analysis.reference import ChunkedList


class TestChunkedList:
    def test_construction_from_iterable(self):
        chunked = ChunkedList(range(100))
        assert len(chunked) == 100
        assert chunked.to_list() == list(range(100))
        assert list(chunked) == list(range(100))

    def test_point_access(self):
        chunked = ChunkedList(range(50))
        assert chunked[0] == 0
        assert chunked[49] == 49
        assert chunked[-1] == 49
        with pytest.raises(IndexError):
            chunked[50]

    def test_insert_and_pop_bounds(self):
        chunked = ChunkedList()
        with pytest.raises(IndexError):
            chunked.insert(1, "x")
        with pytest.raises(IndexError):
            chunked.pop(0)

    def test_matches_list_under_random_operations(self):
        rng = random.Random(17)
        chunked = ChunkedList()
        model: list[int] = []
        for step in range(3000):
            if model and rng.random() < 0.35:
                index = rng.randrange(len(model))
                assert chunked.pop(index) == model.pop(index)
            else:
                index = rng.randint(0, len(model))
                chunked.insert(index, step)
                model.insert(index, step)
            if step % 250 == 0:
                assert chunked.to_list() == model
        assert chunked.to_list() == model
        assert chunked == model

    def test_blocks_stay_near_sqrt_size(self):
        chunked = ChunkedList()
        for value in range(10_000):
            chunked.insert(len(chunked), value)
        block_count = len(chunked._blocks)
        # ~ n / sqrt(n) = sqrt(n) = 100 blocks, allow generous slack.
        assert 30 <= block_count <= 700

    def test_fixed_block_size_is_respected(self):
        chunked = ChunkedList(range(1000), block_size=10)
        assert all(len(block) <= 20 for block in chunked._blocks)
