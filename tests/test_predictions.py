"""Tests for the rank predictors used by the learning-augmented labeler."""

from __future__ import annotations

import pytest

from repro.algorithms import ExactPredictor, NoisyPredictor, StalePredictor


class TestExactPredictor:
    def test_predicts_true_rank(self):
        predictor = ExactPredictor([30, 10, 20])
        assert predictor.predict(10) == 1
        assert predictor.predict(20) == 2
        assert predictor.predict(30) == 3
        assert predictor.max_error() == 0

    def test_unknown_key_raises(self):
        predictor = ExactPredictor([1, 2, 3])
        with pytest.raises(KeyError):
            predictor.predict(99)


class TestNoisyPredictor:
    def test_error_bounded_by_eta(self):
        keys = list(range(1, 201))
        for eta in (0, 1, 5, 25):
            predictor = NoisyPredictor(keys, eta=eta, salt=3)
            assert predictor.max_error() <= eta

    def test_predictions_are_deterministic(self):
        keys = list(range(50))
        first = NoisyPredictor(keys, eta=7, salt=1)
        second = NoisyPredictor(keys, eta=7, salt=1)
        assert [first.predict(k) for k in keys] == [second.predict(k) for k in keys]

    def test_predictions_stay_in_range(self):
        keys = list(range(30))
        predictor = NoisyPredictor(keys, eta=100, salt=2)
        for key in keys:
            assert 1 <= predictor.predict(key) <= len(keys)

    def test_negative_eta_rejected(self):
        with pytest.raises(ValueError):
            NoisyPredictor([1, 2], eta=-1)


class TestStalePredictor:
    def test_known_keys_exact(self):
        predictor = StalePredictor([10, 20, 30])
        assert predictor.predict(10) == 1
        assert predictor.predict(30) == 3

    def test_unknown_keys_interpolated(self):
        predictor = StalePredictor([10, 20, 30])
        assert predictor.predict(15) == 2
        assert predictor.predict(5) == 1

    def test_error_grows_with_staleness(self):
        snapshot = list(range(0, 100))
        fresh_keys = list(range(0, 200))
        predictor = StalePredictor(snapshot)
        assert predictor.max_error_against(fresh_keys) >= 50
