"""Differential fuzz tests: every algorithm vs. the reference model.

Seeded random mixed sequences of singleton inserts/deletes and
``insert_batch`` / ``delete_batch`` calls are run against every registered
algorithm (standalone and composite) in lockstep with a plain sorted-list
reference model.  After every step group the structure must hold exactly
the reference's elements in the same order, report the right size, and
pass the full physical-state validation of
:func:`repro.core.validation.check_labeler`.  Interleaved with the writes,
the *read* protocol (select / cursor ranges / interval counts / rank
lookups) is fuzzed against the same reference — and asserted to be
side-effect-free via a layout digest taken before and after each burst.

The sharded engine gets its own long-haul harness
(:class:`TestShardedDifferential`): :class:`repro.core.ShardedLabeler` over
*every* registered algorithm factory as the shard building block, driven in
lockstep with a :class:`repro.analysis.reference.ChunkedList` ground truth
through ≥ 10k mixed operations per (factory, mode) pair — a growth phase
that forces several shard splits, a churn phase, and a shrink phase that
forces merges — in both singleton and batched execution.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.analysis.reference import ChunkedList
from repro.core import ShardedLabeler
from repro.core.validation import check_labeler
from tests.conftest import ALGORITHM_FACTORIES, COMPOSITE_FACTORIES

ALL_FACTORIES = {**ALGORITHM_FACTORIES, **COMPOSITE_FACTORIES}


def _key_between(reference, rank):
    lower = reference[rank - 2] if rank >= 2 else None
    upper = reference[rank - 1] if rank - 1 < len(reference) else None
    if lower is None and upper is None:
        return Fraction(0)
    if lower is None:
        return upper - 1
    if upper is None:
        return lower + 1
    return (lower + upper) / 2


def _random_insert_batch(rng, reference, room, max_batch):
    """A random valid insert batch plus the post-batch reference state."""
    k = rng.randint(1, min(max_batch, room))
    ranks = sorted(rng.choices(range(1, len(reference) + 2), k=k))
    updated = list(reference)
    items = []
    for offset, rank in enumerate(ranks):
        key = _key_between(updated, rank + offset)
        updated.insert(rank + offset - 1, key)
        items.append((rank, key))
    return items, updated


def _check(labeler, reference):
    assert len(labeler) == len(reference)
    assert list(labeler.elements()) == reference
    check_labeler(labeler, expected=reference)


def _check_reads(labeler, reference, rng):
    """Fuzz the read protocol against the reference model.

    One random point select, cursor range, interval count, and rank
    lookup — every answer checked exactly — plus the side-effect-free
    guarantee: the layout digest (the full element → label map) must be
    identical before and after the reads.
    """
    if not len(reference):
        return
    digest = tuple(sorted(labeler.labels().items(), key=lambda kv: kv[1]))
    size = len(reference)
    rank = rng.randint(1, size)
    hi = min(size, rank + rng.randint(0, 24))
    assert labeler.select(rank) == reference[rank - 1]
    taken = labeler.cursor(rank).take(hi - rank + 1)
    if hasattr(reference, "range_ranks"):  # the ChunkedList ground truth
        expected_slice = reference.range_ranks(rank, hi)
    else:
        expected_slice = list(reference[rank - 1 : hi])
    assert taken == expected_slice
    assert labeler.count_rank_range(rank, hi) == hi - rank + 1
    assert labeler.count_range(0, labeler.num_slots) == size
    element = reference[rank - 1]
    assert labeler.rank_of(element) == rank
    assert labeler.slot_of_rank(rank) == labeler.slot_of(element)
    assert (
        tuple(sorted(labeler.labels().items(), key=lambda kv: kv[1])) == digest
    ), "a read mutated the physical layout"


def _run_differential(factory, *, seed, capacity, steps, use_batches):
    rng = random.Random(seed)
    labeler = factory(capacity)
    reference: list[Fraction] = []
    batch_calls = 0
    for _ in range(steps):
        roll = rng.random()
        room = capacity - len(reference)
        if use_batches and roll < 0.25 and room >= 1:
            items, reference = _random_insert_batch(
                rng, reference, room, max_batch=24
            )
            result = labeler.insert_batch(items)
            assert result.count == len(items)
            batch_calls += 1
        elif use_batches and roll < 0.40 and reference:
            k = rng.randint(1, min(16, len(reference)))
            ranks = rng.sample(range(1, len(reference) + 1), k)
            labeler.delete_batch(ranks)
            for rank in sorted(ranks, reverse=True):
                reference.pop(rank - 1)
            batch_calls += 1
        elif reference and (room == 0 or roll < 0.55):
            rank = rng.randint(1, len(reference))
            labeler.delete(rank)
            reference.pop(rank - 1)
        else:
            rank = rng.randint(1, len(reference) + 1)
            key = _key_between(reference, rank)
            labeler.insert(rank, key)
            reference.insert(rank - 1, key)
        _check(labeler, reference)
        _check_reads(labeler, reference, rng)
    if use_batches:
        assert batch_calls > 0
    return labeler


@pytest.mark.parametrize("use_batches", [False, True], ids=["singleton", "batched"])
@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_standalone_algorithms_match_reference(name, use_batches):
    for seed in (0, 1, 2):
        _run_differential(
            ALGORITHM_FACTORIES[name],
            seed=seed,
            capacity=220,
            steps=60,
            use_batches=use_batches,
        )


@pytest.mark.parametrize("use_batches", [False, True], ids=["singleton", "batched"])
@pytest.mark.parametrize("name", sorted(COMPOSITE_FACTORIES))
def test_composite_structures_match_reference(name, use_batches):
    # Composites are slower per operation; keep the runs shorter.
    _run_differential(
        COMPOSITE_FACTORIES[name],
        seed=3,
        capacity=150,
        steps=40,
        use_batches=use_batches,
    )


# ----------------------------------------------------------------------
# Sharded engine: long-haul parity over every shard algorithm
# ----------------------------------------------------------------------

SHARD_CAPACITY = 24


def _insert_probability(executed: int, total_ops: int, size: int) -> float:
    """Grow → churn → shrink schedule keeping the size in a useful band.

    The growth phase carries the structure well past a dozen shard
    capacities (forcing several splits), churn mixes inserts and deletes at
    scale, and the shrink phase drains to a tenth of the peak so shards
    underflow and merge.
    """
    if executed < total_ops * 2 // 5:
        return 0.92 if size < 450 else 0.5
    if executed < total_ops * 7 // 10:
        return 0.5
    return 0.15 if size > 40 else 0.6


def _sharded_mixed_ops(labeler, *, seed, total_ops, check_every):
    """Drive ``labeler`` and a ChunkedList in lockstep; return the reference."""
    rng = random.Random(seed)
    reference = ChunkedList(block_size=24)
    for executed in range(total_ops):
        size = len(reference)
        insert_p = _insert_probability(executed, total_ops, size)
        if size and rng.random() >= insert_p:
            rank = rng.randint(1, size)
            labeler.delete(rank)
            reference.pop(rank - 1)
        else:
            rank = rng.randint(1, size + 1)
            key = _key_between(reference, rank)
            labeler.insert(rank, key)
            reference.insert(rank - 1, key)
        if (executed + 1) % check_every == 0:
            _check(labeler, reference.to_list())
            _check_reads(labeler, reference, rng)
    return reference


def _sharded_mixed_batches(labeler, *, seed, total_ops, check_every):
    """Batched twin of :func:`_sharded_mixed_ops` (pre-batch rank batches)."""
    rng = random.Random(seed)
    reference = ChunkedList(block_size=24)
    executed = 0
    next_check = check_every
    while executed < total_ops:
        size = len(reference)
        insert_p = _insert_probability(executed, total_ops, size)
        if size and rng.random() >= insert_p:
            count = rng.randint(1, min(32, size))
            ranks = rng.sample(range(1, size + 1), count)
            labeler.delete_batch(ranks)
            for rank in sorted(ranks, reverse=True):
                reference.pop(rank - 1)
            executed += count
        else:
            count = rng.randint(1, 32)
            items, _ = _random_insert_batch(
                rng, reference.to_list(), room=count, max_batch=count
            )
            result = labeler.insert_batch(items)
            assert result.count == len(items)
            for offset, (rank, key) in enumerate(items):  # items rank-sorted
                reference.insert(rank + offset - 1, key)
            executed += len(items)
        if executed >= next_check:
            _check(labeler, reference.to_list())
            _check_reads(labeler, reference, rng)
            next_check += check_every
    return reference


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_sharded_over_every_algorithm_singleton(name):
    labeler = ShardedLabeler(
        ALGORITHM_FACTORIES[name], shard_capacity=SHARD_CAPACITY
    )
    reference = _sharded_mixed_ops(
        labeler, seed=11, total_ops=10_000, check_every=1_000
    )
    _check(labeler, reference.to_list())
    assert labeler.splits >= 3, "the run must cross several shard splits"
    assert labeler.merges >= 1, "the shrink phase must force a merge"


@pytest.mark.parametrize("name", sorted(ALGORITHM_FACTORIES))
def test_sharded_over_every_algorithm_batched(name):
    labeler = ShardedLabeler(
        ALGORITHM_FACTORIES[name], shard_capacity=SHARD_CAPACITY
    )
    reference = _sharded_mixed_batches(
        labeler, seed=13, total_ops=10_000, check_every=1_000
    )
    _check(labeler, reference.to_list())
    # Batched growth restructures are overflow absorptions (rewrites),
    # not singleton splits; the shrink phase may merge or borrow.
    assert labeler.rewrites >= 3, "the run must cross several batch rewrites"
    assert labeler.merges + labeler.borrows >= 1
