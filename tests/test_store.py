"""The durable store's test wall: crash injection, concurrency, stateful.

Four fences:

* **Crash-injection differential** — a seeded mixed workload is recorded
  through the store; the WAL is then "killed" at every frame boundary
  (and mid-frame, for the torn-tail path), recovery is run on the
  truncated copy, and the recovered state must be *byte-identical* — key
  order, composed labels, ``items()``, per-shard physical layout — to an
  uninterrupted in-memory run of the same acknowledged prefix.  This runs
  for **every** registered shard algorithm (the exact-snapshot contract)
  plus a 10k-op flagship workload on the default algorithm (sampled
  boundaries by default; ``REPRO_STORE_EXHAUSTIVE=1``, as set by the CI
  ``store-recovery`` job, kills at every single boundary).
* **Concurrent serving** — a multi-threaded driver hammers one
  :class:`~repro.store.service.StoreService` with interleaved readers,
  writers and a background compactor; every scan must be sorted and
  consistent, and the final durable state must equal the writers' merged
  effect — also after a reopen from disk.
* **Stateful fuzzing** — a hypothesis :class:`RuleBasedStateMachine`
  interleaves puts/deletes/batches with snapshot, compaction, clean
  reopens and torn-tail crashes, checking the model after every rule.
* **Empty-state round-trips** (regression) — ``snapshot → restore →
  insert`` works from the empty state for the sharding engine, the map,
  and the store; consistency checks and iteration paths hold immediately
  after the restore.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.applications.ordered_map import DurableMap, PackedMemoryMap
from repro.core.sharded import ShardedLabeler
from repro.store import codec
from repro.store.harness import (
    RecordedRun,
    ReferenceStore,
    apply_to_store,
    crash_copy,
    fingerprint,
    logical_operations,
    make_ops,
)
from repro.store.factories import EXACT_SNAPSHOT_ALGORITHMS
from repro.store.service import StoreService
from repro.store.snapshot import list_snapshots
from repro.store.store import WAL_FILENAME, DurableStore, StoreError
from repro.store.wal import WALError, WriteAheadLog

#: Exhaustive mode (CI store-recovery job): kill at *every* frame boundary
#: of the flagship workload instead of a deterministic sample.
EXHAUSTIVE = os.environ.get("REPRO_STORE_EXHAUSTIVE", "") not in ("", "0")

#: Every algorithm with an exact snapshot format (the layered
#: ``corollary11`` restores via the elements fallback and has its own
#: logical-contract test).
EXACT_ALGORITHMS = list(EXACT_SNAPSHOT_ALGORITHMS)


# ---------------------------------------------------------------------------
# Crash-injection differential: every algorithm, every frame boundary
# ---------------------------------------------------------------------------
def test_every_suite_algorithm_is_crash_tested(algorithm_name):
    """The differential's universe covers all of ALGORITHM_FACTORIES."""
    assert algorithm_name in EXACT_ALGORITHMS


class TestCrashInjectionDifferential:
    FRAMES = 110
    SNAPSHOT_EVERY = 30
    SHARD_CAPACITY = 16

    @pytest.fixture(params=EXACT_ALGORITHMS)
    def recorded(self, request, tmp_path):
        ops = make_ops(self.FRAMES, seed=97)
        return RecordedRun(
            tmp_path,
            request.param,
            ops,
            shard_capacity=self.SHARD_CAPACITY,
            snapshot_every=self.SNAPSHOT_EVERY,
        )

    def test_every_frame_boundary_recovers_exactly(self, recorded, tmp_path):
        """Kill at every boundary; recovery == the uninterrupted prefix."""
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        expected = fingerprint(reference.map)
        for k in range(recorded.frames + 1):
            if k > 0:
                reference.apply(recorded.ops[k - 1])
                expected = fingerprint(reference.map)
            recovered = recorded.recover_at(tmp_path, k)
            got = fingerprint(recovered.map)
            assert got == expected, (
                f"{recorded.algorithm}: recovery at frame {k} diverged from "
                f"the uninterrupted run"
            )
            # Snapshots must actually shorten the replay: past the first
            # checkpoint, strictly fewer frames than the full prefix.
            if k > self.SNAPSHOT_EVERY:
                assert recovered.recovery.frames_replayed < k
                assert recovered.recovery.snapshot_lsn > 0
            recovered.verify()
            recovered.close()

    def test_mid_frame_kill_truncates_torn_tail(self, recorded, tmp_path):
        """A partial frame on disk recovers to the previous boundary."""
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        sampled = {1, recorded.frames // 2, recorded.frames - 1}
        applied = 0
        for k in sorted(sampled):
            while applied < k:
                reference.apply(recorded.ops[applied])
                applied += 1
            next_frame = recorded.wal_bytes[
                recorded.boundaries[k] : recorded.boundaries[k + 1]
            ]
            torn = next_frame[: max(1, len(next_frame) // 2)]
            recovered = recorded.recover_at(tmp_path, k, extra_bytes=torn)
            assert recovered.recovery.truncated_bytes == len(torn)
            assert fingerprint(recovered.map) == fingerprint(reference.map)
            recovered.close()


class TestFlagshipWorkload:
    """The 10k-op mixed workload on the default (classical) shard profile."""

    SNAPSHOT_EVERY = 120
    SHARD_CAPACITY = 64

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        frames = 800
        ops = make_ops(frames, seed=20260730)
        while logical_operations(ops) < 10_000:
            frames += 100
            ops = make_ops(frames, seed=20260730)
        return RecordedRun(
            tmp_path_factory.mktemp("flagship"),
            "classical",
            ops,
            shard_capacity=self.SHARD_CAPACITY,
            snapshot_every=self.SNAPSHOT_EVERY,
        )

    def test_workload_is_10k_mixed_ops(self, recorded):
        assert logical_operations(recorded.ops) >= 10_000
        kinds = {op[0] for op in recorded.ops}
        assert kinds == {"put", "del", "put_many", "del_many"}

    def test_kill_points_recover_exactly(self, recorded, tmp_path):
        if EXHAUSTIVE:
            kill_points = list(range(recorded.frames + 1))
        else:
            stride = max(1, recorded.frames // 40)
            kill_points = sorted(
                set(range(0, recorded.frames + 1, stride))
                | {1, recorded.frames - 1, recorded.frames}
            )
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        applied = 0
        for k in kill_points:
            while applied < k:
                reference.apply(recorded.ops[applied])
                applied += 1
            recovered = recorded.recover_at(tmp_path, k)
            assert fingerprint(recovered.map) == fingerprint(reference.map), (
                f"flagship recovery at frame {k} diverged"
            )
            if k > self.SNAPSHOT_EVERY:
                # Snapshot + tail replay, not a full-workload replay.
                assert recovered.recovery.frames_replayed <= self.SNAPSHOT_EVERY
            recovered.close()
        # The rolling reference must land on the recorded final state.
        while applied < recorded.frames:
            reference.apply(recorded.ops[applied])
            applied += 1
        assert fingerprint(reference.map) == recorded.final_fingerprint


# ---------------------------------------------------------------------------
# Compaction: recovery after the log prefix is gone
# ---------------------------------------------------------------------------
class TestCompaction:
    def test_recovery_replays_only_the_tail_after_compaction(self, tmp_path):
        ops = make_ops(260, seed=5)
        directory = tmp_path / "compacted"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == 200:
                store.compact()
        expected = fingerprint(store.map)
        store.close()
        reopened = DurableStore(directory, sync_policy="never")
        assert fingerprint(reopened.map) == expected
        assert reopened.recovery.snapshot_lsn == 200
        assert reopened.recovery.frames_replayed == 60
        assert reopened.recovery.frames_replayed < len(ops)
        reopened.verify()
        reopened.close()

    def test_kill_points_after_compaction_recover_exactly(self, tmp_path):
        """Crash-inject inside the post-compaction tail of the WAL."""
        ops = make_ops(240, seed=6)
        directory = tmp_path / "tail"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        compact_at = 180
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == compact_at:
                store.compact()
        store.close()

        raw = (directory / WAL_FILENAME).read_bytes()
        lines = raw.splitlines(keepends=True)
        assert len(lines) == len(ops) - compact_at  # prefix truly dropped

        reference = ReferenceStore("classical", 32)
        for op in ops[:compact_at]:
            reference.apply(op)
        offset = 0
        for j, line in enumerate([b""] + lines):
            offset += len(line)
            if j > 0:
                reference.apply(ops[compact_at + j - 1])
            workdir = tmp_path / f"tail-kill-{j}"
            crash_copy(
                directory,
                workdir,
                wal_bytes=raw[:offset],
                max_snapshot_lsn=compact_at + j,
            )
            recovered = DurableStore(workdir, sync_policy="never")
            assert fingerprint(recovered.map) == fingerprint(reference.map), (
                f"post-compaction recovery at tail frame {j} diverged"
            )
            assert recovered.recovery.snapshot_lsn == compact_at
            assert recovered.recovery.frames_replayed == j
            recovered.close()

    def test_auto_compaction_threshold(self, tmp_path):
        store = DurableStore(
            tmp_path / "auto", algorithm="classical", shard_capacity=32,
            sync_policy="never", compact_every=50,
        )
        for op in make_ops(175, seed=8):
            apply_to_store(store, op)
        assert store.wal_frames_since_snapshot < 50
        assert len(list_snapshots(store.directory)) >= 1
        expected = fingerprint(store.map)
        store.close()
        reopened = DurableStore(tmp_path / "auto", sync_policy="never")
        assert fingerprint(reopened.map) == expected
        reopened.close()


# ---------------------------------------------------------------------------
# The elements-fallback contract (layered shards restore via bulk_load)
# ---------------------------------------------------------------------------
class TestFallbackSnapshotContract:
    def test_layered_shards_recover_contents_and_order(self, tmp_path):
        """`corollary11` shards use the `elements` fallback: recovery must
        reproduce keys, items and sorted order (the logical contract),
        though not necessarily the identical physical slots."""
        ops = make_ops(90, seed=11)
        directory = tmp_path / "layered"
        store = DurableStore(
            directory, algorithm="corollary11", shard_capacity=32,
            sync_policy="never",
        )
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == 45:
                store.snapshot()
        expected_items = list(store.items())
        store.close()
        reopened = DurableStore(directory, sync_policy="never")
        assert list(reopened.items()) == expected_items
        assert reopened.keys() == sorted(reopened.keys())
        reopened.verify()
        reopened.close()


# ---------------------------------------------------------------------------
# WAL unit fences
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def _frames(self, path: Path) -> list[dict]:
        wal = WriteAheadLog(path, sync_policy="never")
        report = wal.open()
        wal.close()
        return report.frames

    def test_append_and_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        wal.append("put", {"key": 1, "value": "a"})
        wal.append("put_many", {"items": [[2, "b"], [3, "c"]]})
        wal.close()
        frames = self._frames(path)
        assert [frame["op"] for frame in frames] == ["put", "put_many"]
        assert [frame["lsn"] for frame in frames] == [1, 2]
        assert frames[1]["items"] == [[2, "b"], [3, "c"]]

    def test_partial_final_line_is_truncated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(5):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"v": 1, "lsn": 6, "op": "put"')
        wal2 = WriteAheadLog(path, sync_policy="never")
        report = wal2.open()
        wal2.close()
        assert len(report.frames) == 5
        assert report.truncated_bytes > 0
        assert path.read_bytes() == intact  # physically truncated back

    def test_corrupted_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(6):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        flipped = lines[3].replace(b'"key":3', b'"key":9')
        path.write_bytes(b"".join(lines[:3] + [flipped] + lines[4:]))
        report = WriteAheadLog(path, sync_policy="never").open()
        assert len(report.frames) == 3
        assert "checksum" in report.truncation_reason

    def test_lsn_gap_truncates(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(6):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3] + lines[4:]))  # drop frame 4
        report = WriteAheadLog(path, sync_policy="never").open()
        assert len(report.frames) == 3
        assert "sequence break" in report.truncation_reason

    def test_unknown_schema_version_refuses(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        import json

        frame = {"v": 999, "lsn": 1, "op": "put", "key": 1, "value": 1}
        body = json.dumps(frame, sort_keys=True, separators=(",", ":"))
        frame["crc"] = codec.checksum(body)
        path.write_text(
            json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with pytest.raises(WALError):
            WriteAheadLog(path, sync_policy="never").open()

    def test_batch_frame_is_atomic_under_tearing(self, tmp_path):
        """A torn batch frame recovers to *zero* of its operations."""
        directory = tmp_path / "atomic"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        store.put(1, "one")
        store.put_many([(10, "a"), (11, "b"), (12, "c"), (13, "d")])
        store.close()
        raw = (directory / WAL_FILENAME).read_bytes()
        lines = raw.splitlines(keepends=True)
        torn = lines[0] + lines[1][: len(lines[1]) // 2]
        (directory / WAL_FILENAME).write_bytes(torn)
        recovered = DurableStore(directory, sync_policy="never")
        assert recovered.keys() == [1]  # the batch is all-or-nothing
        recovered.close()


class TestCodec:
    def test_round_trips(self):
        from fractions import Fraction

        samples = [
            None,
            True,
            -17,
            3.5,
            "plain",
            "$looks-tagged",
            Fraction(22, 7),
            (1, (2, "x"), Fraction(1, 3)),
            b"\x00\xffbytes",
            {"nested": [1, {"deep": (Fraction(5, 9),)}]},
            {"$frac": "escaped-key-collision"},
            {3: "int-keyed", (1, 2): "tuple-keyed"},
        ]
        for value in samples:
            assert codec.loads(codec.dumps(value)) == value

    def test_canonical_dumps_is_stable(self):
        value = {"b": 2, "a": [1, (2, 3)]}
        assert codec.dumps(value) == codec.dumps(dict(reversed(value.items())))


# ---------------------------------------------------------------------------
# Store-level edges
# ---------------------------------------------------------------------------
class TestStoreEdges:
    def test_delete_missing_key_does_not_log(self, tmp_path):
        store = DurableStore(tmp_path / "s", sync_policy="never")
        with pytest.raises(KeyError):
            store.delete(42)
        with pytest.raises(KeyError):
            store.delete_many([42])
        assert store.last_lsn == 0
        store.close()

    def test_failed_apply_retracts_the_frame(self, tmp_path):
        """A mutation that fails in memory must not leave a poison WAL
        frame — replay would deterministically fail on it and the store
        could never be reopened."""
        store = DurableStore(tmp_path / "s", sync_policy="never")
        store.put(1, "one")
        with pytest.raises(TypeError):
            store.put("not-comparable-to-ints", "x")
        with pytest.raises(TypeError):
            store.put_many([(2, "two"), ("mixed", "y")])
        assert store.last_lsn == 1          # both frames were retracted
        store.put(2, "two")                 # the store keeps working
        expected = list(store.items())
        store.close()
        reopened = DurableStore(tmp_path / "s", sync_policy="never")
        assert list(reopened.items()) == expected
        reopened.close()

    def test_fallback_below_compaction_horizon_refuses(self, tmp_path):
        """A corrupt newest snapshot + a compacted WAL must fail loudly,
        not silently recover acknowledged writes away."""
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        for i in range(10):
            store.put(i, i)
        store.compact()                     # snapshot lsn 10
        for i in range(10, 20):
            store.put(i, i)
        store.compact()                     # snapshot lsn 20, WAL empty
        store.close()
        newest = list_snapshots(tmp_path / "s")[-1]
        (newest.path / "shard-0000.json").write_text("garbage")
        with pytest.raises(StoreError, match="compacted through lsn 20"):
            DurableStore(tmp_path / "s", sync_policy="never")

    def test_second_live_open_is_refused(self, tmp_path):
        """Two writers on one directory would interleave LSNs and let the
        next recovery truncate acknowledged frames — the lock makes the
        second open fail loudly instead."""
        first = DurableStore(tmp_path / "s", sync_policy="never")
        with pytest.raises(StoreError, match="locked"):
            DurableStore(tmp_path / "s", sync_policy="never")
        first.close()
        second = DurableStore(tmp_path / "s", sync_policy="never")
        second.close()

    def test_cli_refuses_missing_store_directory(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_cli

        for command in ("verify", "recover", "compact", "snapshot"):
            with pytest.raises(SystemExit, match="no store at"):
                store_cli([command, "--dir", str(tmp_path / "nowhere")])
            assert not (tmp_path / "nowhere").exists()
        # --create initializes explicitly, and the store is then openable.
        assert store_cli(["recover", "--dir", str(tmp_path / "fresh"),
                          "--create", "--sync", "never"]) == 0
        assert store_cli(["verify", "--dir", str(tmp_path / "fresh"),
                          "--sync", "never"]) == 0

    def test_reopen_with_other_algorithm_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "s", algorithm="classical")
        store.close()
        with pytest.raises(StoreError):
            DurableStore(tmp_path / "s", algorithm="naive")

    def test_reopen_with_other_shard_capacity_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "s", shard_capacity=64)
        store.close()
        with pytest.raises(StoreError):
            DurableStore(tmp_path / "s", shard_capacity=32)

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        directory = tmp_path / "s"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        ops = make_ops(80, seed=12)
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index in (40, 80):
                store.snapshot()
        expected = fingerprint(store.map)
        store.close()
        newest = list_snapshots(directory)[-1]
        (newest.path / "shard-0000.json").write_text("garbage")
        recovered = DurableStore(directory, sync_policy="never")
        assert recovered.recovery.snapshot_lsn == 40  # fell back
        assert fingerprint(recovered.map) == expected
        recovered.close()

    def test_durable_map_round_trip(self, tmp_path):
        with DurableMap(
            tmp_path / "m", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        ) as index:
            index["alice"] = 1
            index.update_many([("bob", 2), ("carol", 3)])
            del index["alice"]
            index.checkpoint()
            index["dave"] = 4
            expected = list(index.items())
            label = index.label_of("bob")
        reopened = DurableMap(tmp_path / "m", sync_policy="never")
        assert list(reopened.items()) == expected
        assert reopened.recovery.frames_replayed == 1
        assert reopened.label_of("bob") == label
        assert reopened.predecessor("carol") == "bob"
        reopened.check()
        reopened.close()

    def test_durable_runner_replays_exactly(self, tmp_path):
        from repro.algorithms import make_sharded_labeler
        from repro.analysis import replay_run, run_workload
        from repro.workloads.random_uniform import RandomWorkload

        labeler = make_sharded_labeler(shard_capacity=64)
        workload = RandomWorkload(300, capacity=300, delete_fraction=0.3, seed=3)
        result = run_workload(
            labeler, workload, batch_size=16,
            durable_dir=tmp_path / "run", durable_sync="never",
        )
        assert result.wal_frames > 0
        twin = make_sharded_labeler(shard_capacity=64)
        replayed = replay_run(tmp_path / "run", twin)
        assert replayed.wal_frames == result.wal_frames
        assert tuple(twin.slots()) == tuple(labeler.slots())


# ---------------------------------------------------------------------------
# Empty-state round-trips (regression: satellite 2)
# ---------------------------------------------------------------------------
class TestEmptyStateRoundTrips:
    def test_sharded_empty_snapshot_restore_insert(self, algorithm_factory):
        engine = ShardedLabeler(algorithm_factory, shard_capacity=16)
        twin = ShardedLabeler(algorithm_factory, shard_capacity=16)
        twin.restore(engine.snapshot())
        twin.check_consistency()          # regression: used to assume >=1 key
        assert twin.shard_statistics()["shards"] >= 1.0
        assert list(twin.elements()) == []
        assert twin.labels() == {}
        twin.insert(1, "first")
        twin.check_consistency()
        assert list(twin.elements()) == ["first"]

    def test_sharded_zero_shard_snapshot_restores_to_canonical_empty(self):
        from repro.algorithms import ClassicalPMA

        engine = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=16)
        state = engine.snapshot()
        state["shards"] = []              # a degenerate (but legal) document
        twin = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=16)
        twin.restore(state)
        assert twin.shard_count == 1      # canonical empty state, not zero
        twin.check_consistency()
        twin.insert(1, "x")
        twin.check_consistency()

    def test_map_empty_round_trip_iteration_paths(self):
        source = PackedMemoryMap()
        target = PackedMemoryMap()
        target.restore_state(source.snapshot_state())
        assert list(target.items()) == []
        assert target.keys() == []
        assert list(target.range(0, 10**9)) == []
        target.check()
        target["k"] = "v"
        assert list(target.items()) == [("k", "v")]
        target.check()

    def test_store_empty_snapshot_restore_insert(self, tmp_path):
        store = DurableStore(
            tmp_path / "empty", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        store.snapshot()                  # checkpoint of the empty state
        store.close()
        reopened = DurableStore(tmp_path / "empty", sync_policy="never")
        assert reopened.recovery.snapshot_lsn == 0 or not reopened.keys()
        assert list(reopened.items()) == []
        reopened.verify()
        reopened.put(1, "one")
        reopened.verify()
        expected = list(reopened.items())
        reopened.close()
        again = DurableStore(tmp_path / "empty", sync_policy="never")
        assert list(again.items()) == expected
        again.close()


# ---------------------------------------------------------------------------
# Concurrency: interleaved readers / writers / compactor
# ---------------------------------------------------------------------------
class TestStoreService:
    WRITERS = 4
    READERS = 3
    KEYS_PER_WRITER = 120

    def test_interleaved_readers_and_writers(self, tmp_path):
        store = DurableStore(
            tmp_path / "svc", algorithm="classical", shard_capacity=64,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8)
        service.start_compactor(wal_frame_threshold=150, poll_seconds=0.002)
        errors: list[BaseException] = []
        stop_readers = threading.Event()
        expected: dict = {}

        def writer(slot: int) -> None:
            try:
                rng = random.Random(1000 + slot)
                base = slot * 10**6
                written: list[int] = []
                for i in range(self.KEYS_PER_WRITER):
                    key = base + i
                    if written and rng.random() < 0.15:
                        victim = written.pop(rng.randrange(len(written)))
                        service.delete(victim)
                        expected.pop(victim, None)
                    elif rng.random() < 0.15:
                        batch = [
                            (base + 10**5 + i * 10 + j, f"w{slot}-b{i}-{j}")
                            for j in range(4)
                        ]
                        service.put_many(batch)
                        expected.update(batch)
                    else:
                        service.put(key, f"w{slot}-{i}")
                        expected[key] = f"w{slot}-{i}"
                        written.append(key)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader(slot: int) -> None:
            try:
                rng = random.Random(2000 + slot)
                while not stop_readers.is_set():
                    choice = rng.random()
                    if choice < 0.5:
                        key = rng.randrange(self.WRITERS) * 10**6 + rng.randrange(
                            self.KEYS_PER_WRITER
                        )
                        value = service.get(key)
                        assert value is None or isinstance(value, str)
                    elif choice < 0.8:
                        low = rng.randrange(self.WRITERS) * 10**6
                        scan = service.range_scan(low, low + 10**5)
                        keys = [key for key, _ in scan]
                        assert keys == sorted(keys)
                        assert len(keys) == len(set(keys))
                    else:
                        items = service.snapshot_items()
                        keys = [key for key, _ in items]
                        assert keys == sorted(keys)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        writer_threads = [
            threading.Thread(target=writer, args=(slot,))
            for slot in range(self.WRITERS)
        ]
        reader_threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(self.READERS)
        ]
        for thread in writer_threads + reader_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=120)
        stop_readers.set()
        for thread in reader_threads:
            thread.join(timeout=120)
        service.stop_compactor()
        assert not errors, errors[0]

        # Writers own disjoint key ranges, so the merged dict is the truth.
        assert dict(service.snapshot_items()) == expected
        service.verify()
        service.close()

        reopened = DurableStore(tmp_path / "svc", sync_policy="never")
        assert dict(reopened.items()) == expected
        reopened.verify()
        reopened.close()

    def test_latency_tracking_off_by_default(self, tmp_path):
        store = DurableStore(tmp_path / "svc", sync_policy="never")
        service = StoreService(store)
        service.put(1, "one")
        assert service.mutation_costs is None
        assert service.latency_statistics() == {}
        service.close()

    def test_latency_tracking_with_fake_clock(self, tmp_path):
        # Each mutation spans exactly two clock reads, so with a
        # one-tick-per-call fake every recorded event took 1.0s — exact,
        # deterministic percentiles.
        ticks = iter(range(10**6))

        store = DurableStore(
            tmp_path / "svc", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(
            store, track_latency=True, clock=lambda: float(next(ticks))
        )
        for key in range(40):
            service.put(key, key)
        service.delete(0)
        service.put_many([(100 + offset, offset) for offset in range(20)])
        service.delete_many([100, 101])

        stats = service.latency_statistics()
        assert stats["operations"] == 63.0  # 40 puts + 1 del + 20 + 2
        assert stats["total_moves"] == store.map.costs.total_cost
        assert stats["p50"] <= stats["p99"] <= stats["p999"]
        # Singleton events took 1 tick; the 20-op batch took 1 tick for 20
        # ops (0.05 each), so the weighted median sits at the singletons.
        assert stats["latency_max"] == pytest.approx(1.0)
        assert stats["latency_p50"] == pytest.approx(1.0)
        tracker = service.mutation_costs
        assert tracker is not None
        assert tracker.latency_percentile(0.0) == pytest.approx(1.0 / 20.0)
        service.close()


# ---------------------------------------------------------------------------
# Hypothesis: ops interleaved with snapshot / compact / recover rules
# ---------------------------------------------------------------------------
class DurableStoreMachine(RuleBasedStateMachine):
    """Random ops + random durability events, checked against a dict model."""

    def __init__(self) -> None:
        super().__init__()
        self.directory = Path(tempfile.mkdtemp(prefix="repro-store-machine-"))
        self.model: dict = {}
        self.store: DurableStore | None = None

    @initialize()
    def open_store(self) -> None:
        self.store = DurableStore(
            self.directory / "s", algorithm="classical", shard_capacity=16,
            sync_policy="never",
        )

    @rule(key=st.integers(0, 40), value=st.integers())
    def put(self, key, value) -> None:
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 40))
    def delete(self, key) -> None:
        if key in self.model:
            self.store.delete(key)
            del self.model[key]
        else:
            with pytest.raises(KeyError):
                self.store.delete(key)

    @rule(items=st.dictionaries(st.integers(0, 60), st.integers(), max_size=8))
    def put_many(self, items) -> None:
        if items:
            self.store.put_many(sorted(items.items()))
            self.model.update(items)

    @rule(data=st.data())
    def delete_many(self, data) -> None:
        if not self.model:
            return
        keys = data.draw(
            st.lists(st.sampled_from(sorted(self.model)), max_size=6, unique=True)
        )
        if keys:
            self.store.delete_many(keys)
            for key in keys:
                del self.model[key]

    @rule()
    def snapshot(self) -> None:
        self.store.snapshot()

    @rule()
    def compact(self) -> None:
        self.store.compact()

    @rule()
    def clean_recover(self) -> None:
        self.store.close()
        self.store = DurableStore(self.directory / "s", sync_policy="never")

    @rule(garbage=st.binary(min_size=1, max_size=40))
    def torn_crash_recover(self, garbage) -> None:
        self.store.close()
        with open(self.directory / "s" / WAL_FILENAME, "ab") as handle:
            handle.write(garbage)
        self.store = DurableStore(self.directory / "s", sync_policy="never")

    @invariant()
    def matches_model(self) -> None:
        if self.store is None:
            return
        assert list(self.store.items()) == sorted(self.model.items())
        self.store.verify()

    def teardown(self) -> None:
        if self.store is not None:
            self.store.close()
        shutil.rmtree(self.directory, ignore_errors=True)


TestDurableStoreMachine = DurableStoreMachine.TestCase
TestDurableStoreMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)
