"""The durable store's test wall: crash injection, concurrency, stateful.

Four fences:

* **Crash-injection differential** — a seeded mixed workload is recorded
  through the store; the WAL is then "killed" at every frame boundary
  (and mid-frame, for the torn-tail path), recovery is run on the
  truncated copy, and the recovered state must be *byte-identical* — key
  order, composed labels, ``items()``, per-shard physical layout — to an
  uninterrupted in-memory run of the same acknowledged prefix.  This runs
  for **every** registered shard algorithm (the exact-snapshot contract)
  plus a 10k-op flagship workload on the default algorithm (sampled
  boundaries by default; ``REPRO_STORE_EXHAUSTIVE=1``, as set by the CI
  ``store-recovery`` job, kills at every single boundary).
* **Concurrent serving** — a multi-threaded driver hammers one
  :class:`~repro.store.service.StoreService` with interleaved readers,
  writers and a background compactor; every scan must be sorted and
  consistent, and the final durable state must equal the writers' merged
  effect — also after a reopen from disk.
* **Stateful fuzzing** — a hypothesis :class:`RuleBasedStateMachine`
  interleaves puts/deletes/batches with snapshot, compaction, clean
  reopens and torn-tail crashes, checking the model after every rule.
* **Empty-state round-trips** (regression) — ``snapshot → restore →
  insert`` works from the empty state for the sharding engine, the map,
  and the store; consistency checks and iteration paths hold immediately
  after the restore.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import threading
from pathlib import Path

import pytest
from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.applications.ordered_map import DurableMap, PackedMemoryMap
from repro.core.sharded import ShardedLabeler
from repro.store import codec
from repro.store.harness import (
    RecordedRun,
    ReferenceStore,
    apply_to_store,
    crash_copy,
    fingerprint,
    logical_operations,
    make_ops,
)
from repro.store.factories import EXACT_SNAPSHOT_ALGORITHMS
from repro.store.service import StoreService
from repro.store.snapshot import list_snapshots
from repro.store.store import WAL_FILENAME, DurableStore, StoreError
from repro.store.wal import WALError, WriteAheadLog

#: Exhaustive mode (CI store-recovery job): kill at *every* frame boundary
#: of the flagship workload instead of a deterministic sample.
EXHAUSTIVE = os.environ.get("REPRO_STORE_EXHAUSTIVE", "") not in ("", "0")

#: Every algorithm with an exact snapshot format (the layered
#: ``corollary11`` restores via the elements fallback and has its own
#: logical-contract test).
EXACT_ALGORITHMS = list(EXACT_SNAPSHOT_ALGORITHMS)


# ---------------------------------------------------------------------------
# Crash-injection differential: every algorithm, every frame boundary
# ---------------------------------------------------------------------------
def test_every_suite_algorithm_is_crash_tested(algorithm_name):
    """The differential's universe covers all of ALGORITHM_FACTORIES."""
    assert algorithm_name in EXACT_ALGORITHMS


class TestCrashInjectionDifferential:
    FRAMES = 110
    SNAPSHOT_EVERY = 30
    SHARD_CAPACITY = 16

    @pytest.fixture(params=EXACT_ALGORITHMS)
    def recorded(self, request, tmp_path):
        ops = make_ops(self.FRAMES, seed=97)
        return RecordedRun(
            tmp_path,
            request.param,
            ops,
            shard_capacity=self.SHARD_CAPACITY,
            snapshot_every=self.SNAPSHOT_EVERY,
        )

    def test_every_frame_boundary_recovers_exactly(self, recorded, tmp_path):
        """Kill at every boundary; recovery == the uninterrupted prefix."""
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        expected = fingerprint(reference.map)
        for k in range(recorded.frames + 1):
            if k > 0:
                reference.apply(recorded.ops[k - 1])
                expected = fingerprint(reference.map)
            recovered = recorded.recover_at(tmp_path, k)
            got = fingerprint(recovered.map)
            assert got == expected, (
                f"{recorded.algorithm}: recovery at frame {k} diverged from "
                f"the uninterrupted run"
            )
            # Snapshots must actually shorten the replay: past the first
            # checkpoint, strictly fewer frames than the full prefix.
            if k > self.SNAPSHOT_EVERY:
                assert recovered.recovery.frames_replayed < k
                assert recovered.recovery.snapshot_lsn > 0
            recovered.verify()
            recovered.close()

    def test_mid_frame_kill_truncates_torn_tail(self, recorded, tmp_path):
        """A partial frame on disk recovers to the previous boundary."""
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        sampled = {1, recorded.frames // 2, recorded.frames - 1}
        applied = 0
        for k in sorted(sampled):
            while applied < k:
                reference.apply(recorded.ops[applied])
                applied += 1
            next_frame = recorded.wal_bytes[
                recorded.boundaries[k] : recorded.boundaries[k + 1]
            ]
            torn = next_frame[: max(1, len(next_frame) // 2)]
            recovered = recorded.recover_at(tmp_path, k, extra_bytes=torn)
            assert recovered.recovery.truncated_bytes == len(torn)
            assert fingerprint(recovered.map) == fingerprint(reference.map)
            recovered.close()


class TestFlagshipWorkload:
    """The 10k-op mixed workload on the default (classical) shard profile."""

    SNAPSHOT_EVERY = 120
    SHARD_CAPACITY = 64

    @pytest.fixture(scope="class")
    def recorded(self, tmp_path_factory):
        frames = 800
        ops = make_ops(frames, seed=20260730)
        while logical_operations(ops) < 10_000:
            frames += 100
            ops = make_ops(frames, seed=20260730)
        return RecordedRun(
            tmp_path_factory.mktemp("flagship"),
            "classical",
            ops,
            shard_capacity=self.SHARD_CAPACITY,
            snapshot_every=self.SNAPSHOT_EVERY,
        )

    def test_workload_is_10k_mixed_ops(self, recorded):
        assert logical_operations(recorded.ops) >= 10_000
        kinds = {op[0] for op in recorded.ops}
        assert kinds == {"put", "del", "put_many", "del_many"}

    def test_kill_points_recover_exactly(self, recorded, tmp_path):
        if EXHAUSTIVE:
            kill_points = list(range(recorded.frames + 1))
        else:
            stride = max(1, recorded.frames // 40)
            kill_points = sorted(
                set(range(0, recorded.frames + 1, stride))
                | {1, recorded.frames - 1, recorded.frames}
            )
        reference = ReferenceStore(recorded.algorithm, recorded.shard_capacity)
        applied = 0
        for k in kill_points:
            while applied < k:
                reference.apply(recorded.ops[applied])
                applied += 1
            recovered = recorded.recover_at(tmp_path, k)
            assert fingerprint(recovered.map) == fingerprint(reference.map), (
                f"flagship recovery at frame {k} diverged"
            )
            if k > self.SNAPSHOT_EVERY:
                # Snapshot + tail replay, not a full-workload replay.
                assert recovered.recovery.frames_replayed <= self.SNAPSHOT_EVERY
            recovered.close()
        # The rolling reference must land on the recorded final state.
        while applied < recorded.frames:
            reference.apply(recorded.ops[applied])
            applied += 1
        assert fingerprint(reference.map) == recorded.final_fingerprint


# ---------------------------------------------------------------------------
# Compaction: recovery after the log prefix is gone
# ---------------------------------------------------------------------------
class TestCompaction:
    def test_recovery_replays_only_the_tail_after_compaction(self, tmp_path):
        ops = make_ops(260, seed=5)
        directory = tmp_path / "compacted"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == 200:
                store.compact()
        expected = fingerprint(store.map)
        store.close()
        reopened = DurableStore(directory, sync_policy="never")
        assert fingerprint(reopened.map) == expected
        assert reopened.recovery.snapshot_lsn == 200
        assert reopened.recovery.frames_replayed == 60
        assert reopened.recovery.frames_replayed < len(ops)
        reopened.verify()
        reopened.close()

    def test_kill_points_after_compaction_recover_exactly(self, tmp_path):
        """Crash-inject inside the post-compaction tail of the WAL."""
        ops = make_ops(240, seed=6)
        directory = tmp_path / "tail"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        compact_at = 180
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == compact_at:
                store.compact()
        store.close()

        raw = (directory / WAL_FILENAME).read_bytes()
        lines = raw.splitlines(keepends=True)
        assert len(lines) == len(ops) - compact_at  # prefix truly dropped

        reference = ReferenceStore("classical", 32)
        for op in ops[:compact_at]:
            reference.apply(op)
        offset = 0
        for j, line in enumerate([b""] + lines):
            offset += len(line)
            if j > 0:
                reference.apply(ops[compact_at + j - 1])
            workdir = tmp_path / f"tail-kill-{j}"
            crash_copy(
                directory,
                workdir,
                wal_bytes=raw[:offset],
                max_snapshot_lsn=compact_at + j,
            )
            recovered = DurableStore(workdir, sync_policy="never")
            assert fingerprint(recovered.map) == fingerprint(reference.map), (
                f"post-compaction recovery at tail frame {j} diverged"
            )
            assert recovered.recovery.snapshot_lsn == compact_at
            assert recovered.recovery.frames_replayed == j
            recovered.close()

    def test_auto_compaction_threshold(self, tmp_path):
        store = DurableStore(
            tmp_path / "auto", algorithm="classical", shard_capacity=32,
            sync_policy="never", compact_every=50,
        )
        for op in make_ops(175, seed=8):
            apply_to_store(store, op)
        assert store.wal_frames_since_snapshot < 50
        assert len(list_snapshots(store.directory)) >= 1
        expected = fingerprint(store.map)
        store.close()
        reopened = DurableStore(tmp_path / "auto", sync_policy="never")
        assert fingerprint(reopened.map) == expected
        reopened.close()


# ---------------------------------------------------------------------------
# The elements-fallback contract (layered shards restore via bulk_load)
# ---------------------------------------------------------------------------
class TestFallbackSnapshotContract:
    def test_layered_shards_recover_contents_and_order(self, tmp_path):
        """`corollary11` shards use the `elements` fallback: recovery must
        reproduce keys, items and sorted order (the logical contract),
        though not necessarily the identical physical slots."""
        ops = make_ops(90, seed=11)
        directory = tmp_path / "layered"
        store = DurableStore(
            directory, algorithm="corollary11", shard_capacity=32,
            sync_policy="never",
        )
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index == 45:
                store.snapshot()
        expected_items = list(store.items())
        store.close()
        reopened = DurableStore(directory, sync_policy="never")
        assert list(reopened.items()) == expected_items
        assert reopened.keys() == sorted(reopened.keys())
        reopened.verify()
        reopened.close()


# ---------------------------------------------------------------------------
# WAL unit fences
# ---------------------------------------------------------------------------
class TestWriteAheadLog:
    def _frames(self, path: Path) -> list[dict]:
        wal = WriteAheadLog(path, sync_policy="never")
        report = wal.open()
        wal.close()
        return report.frames

    def test_append_and_reopen(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        wal.append("put", {"key": 1, "value": "a"})
        wal.append("put_many", {"items": [[2, "b"], [3, "c"]]})
        wal.close()
        frames = self._frames(path)
        assert [frame["op"] for frame in frames] == ["put", "put_many"]
        assert [frame["lsn"] for frame in frames] == [1, 2]
        assert frames[1]["items"] == [[2, "b"], [3, "c"]]

    def test_partial_final_line_is_truncated(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(5):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        intact = path.read_bytes()
        path.write_bytes(intact + b'{"v": 1, "lsn": 6, "op": "put"')
        wal2 = WriteAheadLog(path, sync_policy="never")
        report = wal2.open()
        wal2.close()
        assert len(report.frames) == 5
        assert report.truncated_bytes > 0
        assert path.read_bytes() == intact  # physically truncated back

    def test_corrupted_crc_truncates_from_there(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(6):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        flipped = lines[3].replace(b'"key":3', b'"key":9')
        path.write_bytes(b"".join(lines[:3] + [flipped] + lines[4:]))
        report = WriteAheadLog(path, sync_policy="never").open()
        assert len(report.frames) == 3
        assert "checksum" in report.truncation_reason

    def test_lsn_gap_truncates(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(6):
            wal.append("put", {"key": i, "value": i})
        wal.close()
        lines = path.read_bytes().splitlines(keepends=True)
        path.write_bytes(b"".join(lines[:3] + lines[4:]))  # drop frame 4
        report = WriteAheadLog(path, sync_policy="never").open()
        assert len(report.frames) == 3
        assert "sequence break" in report.truncation_reason

    def test_unknown_schema_version_refuses(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        import json

        frame = {"v": 999, "lsn": 1, "op": "put", "key": 1, "value": 1}
        body = json.dumps(frame, sort_keys=True, separators=(",", ":"))
        frame["crc"] = codec.checksum(body)
        path.write_text(
            json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with pytest.raises(WALError):
            WriteAheadLog(path, sync_policy="never").open()

    def test_batch_frame_is_atomic_under_tearing(self, tmp_path):
        """A torn batch frame recovers to *zero* of its operations."""
        directory = tmp_path / "atomic"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        store.put(1, "one")
        store.put_many([(10, "a"), (11, "b"), (12, "c"), (13, "d")])
        store.close()
        raw = (directory / WAL_FILENAME).read_bytes()
        lines = raw.splitlines(keepends=True)
        torn = lines[0] + lines[1][: len(lines[1]) // 2]
        (directory / WAL_FILENAME).write_bytes(torn)
        recovered = DurableStore(directory, sync_policy="never")
        assert recovered.keys() == [1]  # the batch is all-or-nothing
        recovered.close()


class TestCodec:
    def test_round_trips(self):
        from fractions import Fraction

        samples = [
            None,
            True,
            -17,
            3.5,
            "plain",
            "$looks-tagged",
            Fraction(22, 7),
            (1, (2, "x"), Fraction(1, 3)),
            b"\x00\xffbytes",
            {"nested": [1, {"deep": (Fraction(5, 9),)}]},
            {"$frac": "escaped-key-collision"},
            {3: "int-keyed", (1, 2): "tuple-keyed"},
        ]
        for value in samples:
            assert codec.loads(codec.dumps(value)) == value

    def test_canonical_dumps_is_stable(self):
        value = {"b": 2, "a": [1, (2, 3)]}
        assert codec.dumps(value) == codec.dumps(dict(reversed(value.items())))


# ---------------------------------------------------------------------------
# Store-level edges
# ---------------------------------------------------------------------------
class TestStoreEdges:
    def test_delete_missing_key_does_not_log(self, tmp_path):
        store = DurableStore(tmp_path / "s", sync_policy="never")
        with pytest.raises(KeyError):
            store.delete(42)
        with pytest.raises(KeyError):
            store.delete_many([42])
        assert store.last_lsn == 0
        store.close()

    def test_failed_apply_retracts_the_frame(self, tmp_path):
        """A mutation that fails in memory must not leave a poison WAL
        frame — replay would deterministically fail on it and the store
        could never be reopened."""
        store = DurableStore(tmp_path / "s", sync_policy="never")
        store.put(1, "one")
        with pytest.raises(TypeError):
            store.put("not-comparable-to-ints", "x")
        with pytest.raises(TypeError):
            store.put_many([(2, "two"), ("mixed", "y")])
        assert store.last_lsn == 1          # both frames were retracted
        store.put(2, "two")                 # the store keeps working
        expected = list(store.items())
        store.close()
        reopened = DurableStore(tmp_path / "s", sync_policy="never")
        assert list(reopened.items()) == expected
        reopened.close()

    def test_fallback_below_compaction_horizon_refuses(self, tmp_path):
        """A corrupt newest snapshot + a compacted WAL must fail loudly,
        not silently recover acknowledged writes away."""
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        for i in range(10):
            store.put(i, i)
        store.compact()                     # snapshot lsn 10
        for i in range(10, 20):
            store.put(i, i)
        store.compact()                     # snapshot lsn 20, WAL empty
        store.close()
        newest = list_snapshots(tmp_path / "s")[-1]
        (newest.path / "shard-0000.json").write_text("garbage")
        with pytest.raises(StoreError, match="compacted through lsn 20"):
            DurableStore(tmp_path / "s", sync_policy="never")

    def test_second_live_open_is_refused(self, tmp_path):
        """Two writers on one directory would interleave LSNs and let the
        next recovery truncate acknowledged frames — the lock makes the
        second open fail loudly instead."""
        first = DurableStore(tmp_path / "s", sync_policy="never")
        with pytest.raises(StoreError, match="locked"):
            DurableStore(tmp_path / "s", sync_policy="never")
        first.close()
        second = DurableStore(tmp_path / "s", sync_policy="never")
        second.close()

    def test_cli_refuses_missing_store_directory(self, tmp_path, capsys):
        from repro.store.__main__ import main as store_cli

        for command in ("verify", "recover", "compact", "snapshot"):
            with pytest.raises(SystemExit, match="no store at"):
                store_cli([command, "--dir", str(tmp_path / "nowhere")])
            assert not (tmp_path / "nowhere").exists()
        # --create initializes explicitly, and the store is then openable.
        assert store_cli(["recover", "--dir", str(tmp_path / "fresh"),
                          "--create", "--sync", "never"]) == 0
        assert store_cli(["verify", "--dir", str(tmp_path / "fresh"),
                          "--sync", "never"]) == 0

    def test_reopen_with_other_algorithm_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "s", algorithm="classical")
        store.close()
        with pytest.raises(StoreError):
            DurableStore(tmp_path / "s", algorithm="naive")

    def test_reopen_with_other_shard_capacity_refuses(self, tmp_path):
        store = DurableStore(tmp_path / "s", shard_capacity=64)
        store.close()
        with pytest.raises(StoreError):
            DurableStore(tmp_path / "s", shard_capacity=32)

    def test_corrupt_snapshot_falls_back_to_older(self, tmp_path):
        directory = tmp_path / "s"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never", snapshot_keep=10**6,
        )
        ops = make_ops(80, seed=12)
        for index, op in enumerate(ops, start=1):
            apply_to_store(store, op)
            if index in (40, 80):
                store.snapshot()
        expected = fingerprint(store.map)
        store.close()
        newest = list_snapshots(directory)[-1]
        (newest.path / "shard-0000.json").write_text("garbage")
        recovered = DurableStore(directory, sync_policy="never")
        assert recovered.recovery.snapshot_lsn == 40  # fell back
        assert fingerprint(recovered.map) == expected
        recovered.close()

    def test_durable_map_round_trip(self, tmp_path):
        with DurableMap(
            tmp_path / "m", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        ) as index:
            index["alice"] = 1
            index.update_many([("bob", 2), ("carol", 3)])
            del index["alice"]
            index.checkpoint()
            index["dave"] = 4
            expected = list(index.items())
            label = index.label_of("bob")
        reopened = DurableMap(tmp_path / "m", sync_policy="never")
        assert list(reopened.items()) == expected
        assert reopened.recovery.frames_replayed == 1
        assert reopened.label_of("bob") == label
        assert reopened.predecessor("carol") == "bob"
        reopened.check()
        reopened.close()

    def test_durable_runner_replays_exactly(self, tmp_path):
        from repro.algorithms import make_sharded_labeler
        from repro.analysis import replay_run, run_workload
        from repro.workloads.random_uniform import RandomWorkload

        labeler = make_sharded_labeler(shard_capacity=64)
        workload = RandomWorkload(300, capacity=300, delete_fraction=0.3, seed=3)
        result = run_workload(
            labeler, workload, batch_size=16,
            durable_dir=tmp_path / "run", durable_sync="never",
        )
        assert result.wal_frames > 0
        twin = make_sharded_labeler(shard_capacity=64)
        replayed = replay_run(tmp_path / "run", twin)
        assert replayed.wal_frames == result.wal_frames
        assert tuple(twin.slots()) == tuple(labeler.slots())


# ---------------------------------------------------------------------------
# Empty-state round-trips (regression: satellite 2)
# ---------------------------------------------------------------------------
class TestEmptyStateRoundTrips:
    def test_sharded_empty_snapshot_restore_insert(self, algorithm_factory):
        engine = ShardedLabeler(algorithm_factory, shard_capacity=16)
        twin = ShardedLabeler(algorithm_factory, shard_capacity=16)
        twin.restore(engine.snapshot())
        twin.check_consistency()          # regression: used to assume >=1 key
        assert twin.shard_statistics()["shards"] >= 1.0
        assert list(twin.elements()) == []
        assert twin.labels() == {}
        twin.insert(1, "first")
        twin.check_consistency()
        assert list(twin.elements()) == ["first"]

    def test_sharded_zero_shard_snapshot_restores_to_canonical_empty(self):
        from repro.algorithms import ClassicalPMA

        engine = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=16)
        state = engine.snapshot()
        state["shards"] = []              # a degenerate (but legal) document
        twin = ShardedLabeler(lambda cap: ClassicalPMA(cap), shard_capacity=16)
        twin.restore(state)
        assert twin.shard_count == 1      # canonical empty state, not zero
        twin.check_consistency()
        twin.insert(1, "x")
        twin.check_consistency()

    def test_map_empty_round_trip_iteration_paths(self):
        source = PackedMemoryMap()
        target = PackedMemoryMap()
        target.restore_state(source.snapshot_state())
        assert list(target.items()) == []
        assert target.keys() == []
        assert list(target.range(0, 10**9)) == []
        target.check()
        target["k"] = "v"
        assert list(target.items()) == [("k", "v")]
        target.check()

    def test_store_empty_snapshot_restore_insert(self, tmp_path):
        store = DurableStore(
            tmp_path / "empty", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        store.snapshot()                  # checkpoint of the empty state
        store.close()
        reopened = DurableStore(tmp_path / "empty", sync_policy="never")
        assert reopened.recovery.snapshot_lsn == 0 or not reopened.keys()
        assert list(reopened.items()) == []
        reopened.verify()
        reopened.put(1, "one")
        reopened.verify()
        expected = list(reopened.items())
        reopened.close()
        again = DurableStore(tmp_path / "empty", sync_policy="never")
        assert list(again.items()) == expected
        again.close()


# ---------------------------------------------------------------------------
# Concurrency: interleaved readers / writers / compactor
# ---------------------------------------------------------------------------
class TestStoreService:
    WRITERS = 4
    READERS = 3
    KEYS_PER_WRITER = 120

    def test_interleaved_readers_and_writers(self, tmp_path):
        store = DurableStore(
            tmp_path / "svc", algorithm="classical", shard_capacity=64,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8)
        service.start_compactor(wal_frame_threshold=150, poll_seconds=0.002)
        errors: list[BaseException] = []
        stop_readers = threading.Event()
        expected: dict = {}

        def writer(slot: int) -> None:
            try:
                rng = random.Random(1000 + slot)
                base = slot * 10**6
                written: list[int] = []
                for i in range(self.KEYS_PER_WRITER):
                    key = base + i
                    if written and rng.random() < 0.15:
                        victim = written.pop(rng.randrange(len(written)))
                        service.delete(victim)
                        expected.pop(victim, None)
                    elif rng.random() < 0.15:
                        batch = [
                            (base + 10**5 + i * 10 + j, f"w{slot}-b{i}-{j}")
                            for j in range(4)
                        ]
                        service.put_many(batch)
                        expected.update(batch)
                    else:
                        service.put(key, f"w{slot}-{i}")
                        expected[key] = f"w{slot}-{i}"
                        written.append(key)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader(slot: int) -> None:
            try:
                rng = random.Random(2000 + slot)
                while not stop_readers.is_set():
                    choice = rng.random()
                    if choice < 0.5:
                        key = rng.randrange(self.WRITERS) * 10**6 + rng.randrange(
                            self.KEYS_PER_WRITER
                        )
                        value = service.get(key)
                        assert value is None or isinstance(value, str)
                    elif choice < 0.8:
                        low = rng.randrange(self.WRITERS) * 10**6
                        scan = service.range_scan(low, low + 10**5)
                        keys = [key for key, _ in scan]
                        assert keys == sorted(keys)
                        assert len(keys) == len(set(keys))
                    else:
                        items = service.snapshot_items()
                        keys = [key for key, _ in items]
                        assert keys == sorted(keys)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        writer_threads = [
            threading.Thread(target=writer, args=(slot,))
            for slot in range(self.WRITERS)
        ]
        reader_threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(self.READERS)
        ]
        for thread in writer_threads + reader_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=120)
        stop_readers.set()
        for thread in reader_threads:
            thread.join(timeout=120)
        service.stop_compactor()
        assert not errors, errors[0]

        # Writers own disjoint key ranges, so the merged dict is the truth.
        assert dict(service.snapshot_items()) == expected
        service.verify()
        service.close()

        reopened = DurableStore(tmp_path / "svc", sync_policy="never")
        assert dict(reopened.items()) == expected
        reopened.verify()
        reopened.close()

    def test_point_reads_race_restructures(self, tmp_path):
        """Regression: ``get``/``contains`` must hold the structure lock.

        A stripe-only point read can overlap a singleton writer that holds
        the structure lock plus a *different* key's stripe — and that
        writer can be mid shard split/merge, leaving the rank directory
        and shard list transiently inconsistent.  Pre-fix, readers here
        observed missing keys and wrong values; post-fix every read of a
        stable key must return its exact value.
        """
        store = DurableStore(
            tmp_path / "race", algorithm="classical", shard_capacity=16,
            sync_policy="never",
        )
        service = StoreService(store, stripes=4)
        stable = list(range(0, 3000, 2))  # even keys: never touched again
        service.put_many([(key, key * 3) for key in stable])
        barrier = threading.Barrier(4, timeout=30)
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer() -> None:
            # Singleton puts/deletes hold one stripe each, so they overlap
            # stripe-only readers; churning the odd keys forces a steady
            # stream of splits and merges through the even keys' shards.
            try:
                barrier.wait()
                rng = random.Random(99)
                odd = list(range(1, 3000, 2))
                for _ in range(3):
                    rng.shuffle(odd)
                    for key in odd:
                        service.put(key, key * 3)
                    for key in odd:
                        service.delete(key)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)
            finally:
                stop.set()

        def reader(slot: int) -> None:
            try:
                barrier.wait()
                rng = random.Random(slot)
                while not stop.is_set():
                    key = stable[rng.randrange(len(stable))]
                    assert service.contains(key)
                    value = service.get(key)
                    assert value == key * 3, f"key {key} read {value!r}"
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader, args=(slot,)) for slot in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not errors, errors[0]
        assert dict(service.snapshot_items()) == {
            key: key * 3 for key in stable
        }
        service.verify()
        service.close()

    def test_point_reads_serialize_against_structure_writers(self, tmp_path):
        """Regression: a point read must park behind the structure lock.

        Pre-fix, ``get``/``contains`` took only their key's stripe, so
        they completed while a restructuring writer held the structure
        lock exclusively — reading mid-split state.  Post-fix they queue
        behind the writer and complete only after it releases.
        """
        store = DurableStore(tmp_path / "order", sync_policy="never")
        service = StoreService(store, stripes=4)
        service.put(1, "one")
        writer_in = threading.Event()
        release_writer = threading.Event()
        order: list[str] = []

        def structure_writer() -> None:
            with service._structure.write():
                writer_in.set()
                release_writer.wait(timeout=30)
                order.append("writer released")

        def point_reader() -> None:
            assert service.get(1) == "one"
            assert service.contains(1)
            order.append("reader returned")

        writer = threading.Thread(target=structure_writer)
        writer.start()
        assert writer_in.wait(timeout=30)
        reader = threading.Thread(target=point_reader)
        reader.start()
        reader.join(timeout=0.5)
        try:
            # The writer still holds the structure lock: the read must
            # not have completed (stripe-only reads slipped through here).
            assert reader.is_alive(), "point read bypassed the structure lock"
        finally:
            release_writer.set()
            writer.join(timeout=30)
            reader.join(timeout=30)
        assert order == ["writer released", "reader returned"]
        service.close()

    def test_parallel_batch_writers_with_paged_readers(self, tmp_path):
        """Batch writers on the pooled path vs concurrent ``scan_pages``."""
        store = DurableStore(
            tmp_path / "par", algorithm="classical", shard_capacity=16,
            sync_policy="never",
        )
        service = StoreService(store, stripes=8, max_workers=8)
        assert service.pool is not None
        assert store.labeler.pool is service.pool
        errors: list[BaseException] = []
        stop = threading.Event()
        expected: dict = {}

        def writer(slot: int) -> None:
            try:
                rng = random.Random(3000 + slot)
                base = slot * 10**6
                live: list[int] = []
                for i in range(25):
                    batch = [
                        (base + i * 100 + j, f"w{slot}-{i}-{j}")
                        for j in range(40)
                    ]
                    service.put_many(batch)
                    expected.update(batch)
                    live.extend(key for key, _ in batch)
                    if len(live) > 80 and rng.random() < 0.4:
                        victims = [
                            live.pop(rng.randrange(len(live)))
                            for _ in range(30)
                        ]
                        service.delete_many(victims)
                        for victim in victims:
                            expected.pop(victim)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def reader() -> None:
            try:
                while not stop.is_set():
                    last = None
                    for page in service.scan_pages(page_size=64):
                        keys = [key for key, _ in page]
                        # Pages resume after the previous page's last key,
                        # so the concatenated key stream must be strictly
                        # increasing even while writers run between pages.
                        assert keys == sorted(keys)
                        assert last is None or keys[0] > last
                        last = keys[-1]
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        writer_threads = [
            threading.Thread(target=writer, args=(slot,)) for slot in range(4)
        ]
        reader_threads = [threading.Thread(target=reader) for _ in range(2)]
        for thread in writer_threads + reader_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=180)
        stop.set()
        for thread in reader_threads:
            thread.join(timeout=180)
        assert not errors, errors[0]
        # Writers own disjoint key ranges, so the merged dict is the truth.
        assert dict(service.snapshot_items()) == expected
        service.verify()
        service.close()
        assert store.labeler.pool is None  # close() detached the pool

        reopened = DurableStore(tmp_path / "par", sync_policy="never")
        assert dict(reopened.items()) == expected
        reopened.verify()
        reopened.close()

    def test_latency_tracking_off_by_default(self, tmp_path):
        store = DurableStore(tmp_path / "svc", sync_policy="never")
        service = StoreService(store)
        service.put(1, "one")
        assert service.mutation_costs is None
        assert service.latency_statistics() == {}
        service.close()

    def test_latency_tracking_with_fake_clock(self, tmp_path):
        # Each mutation spans exactly two clock reads, so with a
        # one-tick-per-call fake every recorded event took 1.0s — exact,
        # deterministic percentiles.
        ticks = iter(range(10**6))

        store = DurableStore(
            tmp_path / "svc", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(
            store, track_latency=True, clock=lambda: float(next(ticks))
        )
        for key in range(40):
            service.put(key, key)
        service.delete(0)
        service.put_many([(100 + offset, offset) for offset in range(20)])
        service.delete_many([100, 101])

        stats = service.latency_statistics()
        assert stats["operations"] == 63.0  # 40 puts + 1 del + 20 + 2
        assert stats["total_moves"] == store.map.costs.total_cost
        assert stats["p50"] <= stats["p99"] <= stats["p999"]
        # Singleton events took 1 tick; the 20-op batch took 1 tick for 20
        # ops (0.05 each), so the weighted median sits at the singletons.
        assert stats["latency_max"] == pytest.approx(1.0)
        assert stats["latency_p50"] == pytest.approx(1.0)
        tracker = service.mutation_costs
        assert tracker is not None
        assert tracker.latency_percentile(0.0) == pytest.approx(1.0 / 20.0)
        service.close()


# ---------------------------------------------------------------------------
# Hypothesis: ops interleaved with snapshot / compact / recover rules
# ---------------------------------------------------------------------------
class DurableStoreMachine(RuleBasedStateMachine):
    """Random ops + random durability events, checked against a dict model."""

    def __init__(self) -> None:
        super().__init__()
        self.directory = Path(tempfile.mkdtemp(prefix="repro-store-machine-"))
        self.model: dict = {}
        self.store: DurableStore | None = None

    @initialize()
    def open_store(self) -> None:
        self.store = DurableStore(
            self.directory / "s", algorithm="classical", shard_capacity=16,
            sync_policy="never",
        )

    @rule(key=st.integers(0, 40), value=st.integers())
    def put(self, key, value) -> None:
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=st.integers(0, 40))
    def delete(self, key) -> None:
        if key in self.model:
            self.store.delete(key)
            del self.model[key]
        else:
            with pytest.raises(KeyError):
                self.store.delete(key)

    @rule(items=st.dictionaries(st.integers(0, 60), st.integers(), max_size=8))
    def put_many(self, items) -> None:
        if items:
            self.store.put_many(sorted(items.items()))
            self.model.update(items)

    @rule(data=st.data())
    def delete_many(self, data) -> None:
        if not self.model:
            return
        keys = data.draw(
            st.lists(st.sampled_from(sorted(self.model)), max_size=6, unique=True)
        )
        if keys:
            self.store.delete_many(keys)
            for key in keys:
                del self.model[key]

    @rule()
    def snapshot(self) -> None:
        self.store.snapshot()

    @rule()
    def compact(self) -> None:
        self.store.compact()

    @rule()
    def clean_recover(self) -> None:
        self.store.close()
        self.store = DurableStore(self.directory / "s", sync_policy="never")

    @rule(garbage=st.binary(min_size=1, max_size=40))
    def torn_crash_recover(self, garbage) -> None:
        self.store.close()
        with open(self.directory / "s" / WAL_FILENAME, "ab") as handle:
            handle.write(garbage)
        self.store = DurableStore(self.directory / "s", sync_policy="never")

    @invariant()
    def matches_model(self) -> None:
        if self.store is None:
            return
        assert list(self.store.items()) == sorted(self.model.items())
        self.store.verify()

    def teardown(self) -> None:
        if self.store is not None:
            self.store.close()
        shutil.rmtree(self.directory, ignore_errors=True)


TestDurableStoreMachine = DurableStoreMachine.TestCase
TestDurableStoreMachine.settings = settings(
    max_examples=10, stateful_step_count=25, deadline=None
)


# ---------------------------------------------------------------------------
# Compaction revalidates the retained WAL tail (regression)
# ---------------------------------------------------------------------------
class TestTruncateRevalidation:
    def _open_wal(self, path: Path, frames: int) -> None:
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        for i in range(frames):
            wal.append("put", {"key": i, "value": i})
        wal.close()

    def test_bit_flipped_retained_frame_is_not_rewritten(self, tmp_path):
        """truncate_through must route retained lines through full frame
        validation — a corrupt line must not survive into the new log,
        where it would poison every later recovery."""
        path = tmp_path / "wal.jsonl"
        self._open_wal(path, 8)
        lines = path.read_bytes().splitlines(keepends=True)
        # Flip a bit inside frame 5 (lsn 5): retained range for cut=2.
        corrupted = lines[4].replace(b'"key":4', b'"key":7')
        path.write_bytes(b"".join(lines[:4] + [corrupted] + lines[5:]))

        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()  # open() itself truncates at the corruption...
        # ...so rebuild the corrupt file under an open handle, as bit rot
        # after open (the compaction-time hazard) would leave it.
        wal.close()
        path.write_bytes(b"".join(lines[:4] + [corrupted] + lines[5:]))
        wal = WriteAheadLog.__new__(WriteAheadLog)
        wal.path = path
        wal.sync_policy = "never"
        wal._file = open(path, "a", encoding="utf-8")
        wal._next_lsn = 9
        wal._listeners = []
        wal._truncate_epoch = 0

        report = wal.truncate_through(2)
        wal.close()
        assert report.suspect_reason is not None
        assert "checksum" in report.suspect_reason
        assert report.retained_frames == 2          # lsn 3 and 4 only
        assert report.suspect_frames == 4           # lsn 5..8 all untrusted
        assert report.suspect_bytes > 0
        kept = path.read_bytes().splitlines(keepends=True)
        assert kept == lines[2:4]                   # corrupt tail dropped

    def test_clean_truncate_reports_no_suspects(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        self._open_wal(path, 6)
        wal = WriteAheadLog(path, sync_policy="never")
        wal.open()
        report = wal.truncate_through(4)
        wal.close()
        assert report.suspect_reason is None
        assert report.suspect_frames == 0
        assert report.retained_frames == 2

    def test_store_compaction_escalates_on_corrupt_retained_frame(
        self, tmp_path
    ):
        """Store-level regression: a retained frame that fails revalidation
        escalates compaction to a full truncation (the snapshot covers
        everything), and the store recovers exactly — no poisoned log, no
        LSN gap between the file tail and the next live append."""
        directory = tmp_path / "s"
        store = DurableStore(
            directory, algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        for i in range(10):
            store.put(i, f"v{i}")
        # Bit-rot frame 7 on disk while the store is live.
        wal_path = directory / WAL_FILENAME
        lines = wal_path.read_bytes().splitlines(keepends=True)
        corrupted = lines[6].replace(b'"key":6', b'"key":0')
        assert corrupted != lines[6]
        wal_path.write_bytes(b"".join(lines[:6] + [corrupted] + lines[7:]))

        lsn = store.compact(retain_after=4)  # wants to retain 5..10
        report = store.last_truncate_report
        assert report is not None
        assert report.suspect_reason is not None
        assert report.retained_frames == 0          # escalated: full cut
        assert store.durable_horizon == lsn         # horizon at the snapshot
        assert wal_path.read_bytes() == b""

        # The next append continues the sequence with no gap...
        store.put(100, "after")
        expected = fingerprint(store.map)
        store.close()
        # ...and recovery reproduces the exact state.
        reopened = DurableStore(directory, sync_policy="never")
        assert fingerprint(reopened.map) == expected
        reopened.verify()
        reopened.close()


# ---------------------------------------------------------------------------
# The compactor daemon survives failing iterations (regression)
# ---------------------------------------------------------------------------
class TestCompactorResilience:
    def test_poisoned_callback_does_not_kill_the_loop(self, tmp_path):
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(store)
        failures = [3]          # the callback raises its first three calls
        reported: list[BaseException] = []
        compacted = threading.Event()

        def poisoned(lsn: int) -> None:
            if failures[0] > 0:
                failures[0] -= 1
                raise RuntimeError("flaky compaction hook")
            compacted.set()

        service.start_compactor(
            wal_frame_threshold=5,
            poll_seconds=0.001,
            on_compact=poisoned,
            on_error=reported.append,
        )
        # Each poisoned iteration still compacts (resetting the frame
        # counter), so keep the WAL growing until an iteration's hook
        # finally succeeds.  Yield between puts — a hot write loop can
        # starve the compactor of the structure lock indefinitely.
        import time as _time

        start = _time.monotonic()
        key = 0
        while not compacted.is_set() and _time.monotonic() - start < 30:
            service.put(key, key)
            key += 1
            _time.sleep(0.001)
        assert compacted.wait(timeout=30), (
            f"compactor never recovered (alive={service.compactor_alive}, "
            f"last error: {service.last_compactor_error})"
        )
        # The loop survived the failing iterations, surfaced them, and
        # kept going until an iteration succeeded.
        assert service.compactor_alive
        assert isinstance(service.last_compactor_error, RuntimeError)
        assert len(reported) == 3
        service.stop_compactor()
        assert not service.compactor_alive
        service.verify()
        service.close()

    def test_broken_error_hook_does_not_kill_the_loop(self, tmp_path):
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(store)
        calls = [0]

        def exploding_on_compact(lsn: int) -> None:
            calls[0] += 1
            raise RuntimeError("always fails")

        def exploding_on_error(error: BaseException) -> None:
            raise ValueError("the error hook itself is broken")

        service.start_compactor(
            wal_frame_threshold=3,
            poll_seconds=0.001,
            on_compact=exploding_on_compact,
            on_error=exploding_on_error,
        )
        deadline = 30.0
        import time as _time

        start = _time.monotonic()
        while calls[0] < 2 and _time.monotonic() - start < deadline:
            service.put(calls[0] * 1000 + len(str(calls[0])), "x")
            _time.sleep(0.001)
        assert calls[0] >= 2        # iterations kept coming
        assert service.compactor_alive
        service.stop_compactor()
        service.close()


# ---------------------------------------------------------------------------
# Zero-applied batches stay visible to the latency tail (regression)
# ---------------------------------------------------------------------------
class TestZeroAppliedBatchLatency:
    def test_zero_weight_events_are_recorded(self, tmp_path):
        ticks = iter(range(10**6))
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(
            store, track_latency=True, clock=lambda: float(next(ticks))
        )
        service.put(1, "one")
        assert service.put_many([]) == 0
        assert service.delete_many([]) == 0

        stats = service.latency_statistics()
        # One applied operation, but THREE events: the no-op batches held
        # the locks and took wall-clock time — p999 must see them.
        assert stats["operations"] == 1.0
        assert stats["events"] == 3.0
        assert "latency_event_p999" in stats
        assert stats["latency_event_p999"] >= 1.0
        tracker = service.mutation_costs
        assert tracker.events == 3
        assert tracker.operations == 1
        # Per-operation views are untouched by weight-0 events.
        assert tracker.percentile(0.999) == tracker.costs[0]
        assert tracker.tail_fraction(0) == 1.0
        service.close()

    def test_only_zero_weight_events_still_summarize(self, tmp_path):
        """A run of nothing but no-op batches must not report empty stats."""
        ticks = iter(range(10**6))
        store = DurableStore(tmp_path / "s", sync_policy="never")
        service = StoreService(
            store, track_latency=True, clock=lambda: float(next(ticks))
        )
        service.delete_many([])
        stats = service.latency_statistics()
        assert stats != {}
        assert stats["operations"] == 0.0
        assert stats["events"] == 1.0
        assert stats["latency_event_p999"] == pytest.approx(1.0)
        service.close()

    def test_cost_tracker_zero_weight_unit(self):
        from repro.core.cost import CostTracker

        tracker = CostTracker()
        tracker.record(4, latency=0.5)
        tracker.record_batch(0, 0, latency=9.0)   # the no-op stall
        assert tracker.events == 2
        assert tracker.operations == 1
        assert tracker.percentile(0.999) == 4.0       # unpolluted
        assert tracker.latency_percentile(0.999) == 0.5
        assert tracker.event_latency_percentile(0.999) == 9.0
        assert tracker.max_latency == 9.0


# ---------------------------------------------------------------------------
# RWLock fences: writer preference, no lost wakeups (satellite 4)
# ---------------------------------------------------------------------------
class TestRWLockDirect:
    def test_waiting_writer_blocks_new_readers(self):
        from repro.store.service import RWLock

        lock = RWLock()
        lock.acquire_read()                   # an in-flight reader

        writer_has_lock = threading.Event()
        writer_released = threading.Event()

        def writer() -> None:
            lock.acquire_write()
            writer_has_lock.set()
            writer_released.wait(timeout=30)
            lock.release_write()

        writer_thread = threading.Thread(target=writer)
        writer_thread.start()
        # Give the writer time to register as waiting.
        deadline = 200
        while lock._writers_waiting == 0 and deadline > 0:
            threading.Event().wait(0.005)
            deadline -= 1
        assert lock._writers_waiting == 1

        late_reader_acquired = threading.Event()

        def late_reader() -> None:
            lock.acquire_read()
            late_reader_acquired.set()
            lock.release_read()

        reader_thread = threading.Thread(target=late_reader)
        reader_thread.start()
        # Writer preference: the late reader must NOT get in while a
        # writer is waiting, even though a reader currently holds the lock.
        assert not late_reader_acquired.wait(timeout=0.2)

        lock.release_read()                   # writer's turn now
        assert writer_has_lock.wait(timeout=30)
        assert not late_reader_acquired.is_set()
        writer_released.set()                 # then the late reader
        assert late_reader_acquired.wait(timeout=30)
        writer_thread.join(timeout=30)
        reader_thread.join(timeout=30)

    def test_no_lost_wakeups_under_reader_churn(self):
        """Writers keep making progress while readers churn: every writer
        acquisition completes — no writer is ever stranded waiting on a
        wakeup that never comes."""
        from repro.store.service import RWLock

        lock = RWLock()
        stop = threading.Event()
        errors: list[BaseException] = []
        writer_rounds = 60
        writers_done = []

        def reader() -> None:
            try:
                while not stop.is_set():
                    lock.acquire_read()
                    lock.release_read()
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        shared = [0]

        def writer() -> None:
            try:
                for _ in range(writer_rounds):
                    lock.acquire_write()
                    value = shared[0]
                    shared[0] = value + 1     # exclusive: no torn updates
                    lock.release_write()
                writers_done.append(True)
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        reader_threads = [threading.Thread(target=reader) for _ in range(6)]
        writer_threads = [threading.Thread(target=writer) for _ in range(3)]
        for thread in reader_threads + writer_threads:
            thread.start()
        for thread in writer_threads:
            thread.join(timeout=60)
        stop.set()
        for thread in reader_threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        assert len(writers_done) == 3         # nobody stranded
        assert shared[0] == 3 * writer_rounds  # exclusivity held


# ---------------------------------------------------------------------------
# Paginated scans: writer lands exactly at the cursor key (satellite 4)
# ---------------------------------------------------------------------------
class TestScanPagesCursor:
    def test_writer_inserting_at_the_cursor_between_pages(self, tmp_path):
        """The documented cursor contract under the nastiest interleaving:
        between two pages a writer (a) overwrites the cursor key itself and
        (b) inserts a brand-new key immediately after the cursor.  The
        scan must not re-yield the cursor key, must see the new key, and
        must never duplicate or unsort."""
        store = DurableStore(
            tmp_path / "s", algorithm="classical", shard_capacity=32,
            sync_policy="never",
        )
        service = StoreService(store)
        evens = list(range(0, 20, 2))
        service.put_many([(key, f"old-{key}") for key in evens])

        pages = service.scan_pages(page_size=5)
        first = next(pages)
        assert [key for key, _ in first] == evens[:5]
        cursor = first[-1][0]                 # key 8

        # The interleaved writer: overwrite the cursor key, insert the
        # key right behind it, and one far behind the scan front.
        service.put(cursor, "overwritten-at-cursor")
        service.put(cursor + 1, "inserted-at-cursor")     # key 9
        service.put(1, "inserted-behind-the-scan")        # skipped by contract

        rest = [pair for page in pages for pair in page]
        keys = [key for key, _ in rest]
        assert keys == [9] + evens[5:]        # 9 seen, 8 not re-yielded
        assert dict(rest)[9] == "inserted-at-cursor"
        all_keys = [key for key, _ in first] + keys
        assert len(all_keys) == len(set(all_keys))        # no duplicates
        assert all_keys == sorted(all_keys)               # ordered overall
        service.close()
